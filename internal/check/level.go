// Package check is the compiler sanitizer: a leveled set of IR invariant
// checks run between phases. Level Off does nothing and costs nothing
// (no dominator trees are built, no allocation happens on the compile
// path). Level Basic runs the structural ir.Verify pass. Level Strict
// additionally builds a dominator tree and proves SSA well-formedness
// (def dominates use, phi inputs dominate the matching predecessor),
// cross-checks every FrameState against the bytecode verifier's
// stack shapes, validates virtual-object metadata, and verifies OSR
// entry conventions.
//
// The environment variable PEA_CHECK ("off", "basic", "strict") acts as
// a floor on every explicitly configured level, so PEA_CHECK=strict
// flips an entire test suite or benchmark run into strict mode without
// touching any call site.
package check

import (
	"fmt"
	"os"
	"sync"
)

// Level selects how much checking runs between compiler phases.
type Level int

const (
	// Off disables all checking. The compile path must build no
	// dominator trees and perform no checking allocations at this level.
	Off Level = iota
	// Basic runs the structural ir.Verify pass (the historical
	// Validate=true behavior).
	Basic
	// Strict runs Basic plus dominance-aware SSA checks, deep
	// FrameState/virtual-object validation and OSR convention checks.
	Strict
)

func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case Basic:
		return "basic"
	case Strict:
		return "strict"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel parses a level name as accepted by the -check flag and the
// PEA_CHECK environment variable.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "basic":
		return Basic, nil
	case "strict":
		return Strict, nil
	}
	return Off, fmt.Errorf("check: unknown level %q (want off, basic or strict)", s)
}

// Max returns the stronger of two levels.
func Max(a, b Level) Level {
	if a > b {
		return a
	}
	return b
}

var (
	envOnce  sync.Once
	envLevel Level
)

// Env returns the level requested by the PEA_CHECK environment variable,
// parsed once per process. An unset or empty variable means Off; an
// invalid value panics (a misspelled PEA_CHECK silently checking nothing
// would defeat its purpose).
func Env() Level {
	envOnce.Do(func() {
		v := os.Getenv("PEA_CHECK")
		l, err := ParseLevel(v)
		if err != nil {
			panic(err)
		}
		envLevel = l
	})
	return envLevel
}

// Effective floors an explicitly configured level by the PEA_CHECK
// environment variable.
func Effective(l Level) Level { return Max(l, Env()) }
