// Tests live in an external package so they can drive the real front end
// (build, opt, pea) against the checker; those packages import check, so an
// internal test package would cycle.
package check_test

import (
	"strings"
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/check"
	"pea/internal/ir"
)

// tinyMethod assembles a one-parameter method used as a graph carrier.
func tinyMethod(t *testing.T) *bc.Method {
	t.Helper()
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	m.Load(0).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	return p.ClassByName("C").MethodByName("m")
}

// danglingPhiGraph builds a diamond whose phi takes, for the b1 edge, a
// constant defined in b2 — structurally well-formed (counts match, all
// nodes placed) but an SSA dominance violation: b2 does not dominate b1.
func danglingPhiGraph(t *testing.T) *ir.Graph {
	t.Helper()
	g := ir.NewGraph(tinyMethod(t))
	entry := g.Entry()
	p := g.NewNode(ir.OpParam, bc.KindInt)
	g.Append(entry, p)
	b1 := g.NewBlock()
	b2 := g.NewBlock()
	join := g.NewBlock()
	g.SetTerm(entry, g.NewNode(ir.OpIf, bc.KindVoid, p), b1, b2)
	c2 := g.ConstInt(b2, 2)
	g.SetTerm(b1, g.NewNode(ir.OpGoto, bc.KindVoid), join)
	g.SetTerm(b2, g.NewNode(ir.OpGoto, bc.KindVoid), join)
	phi := g.AddPhi(join, bc.KindInt, c2, c2) // input 0 is for pred b1: dangling
	g.SetTerm(join, g.NewNode(ir.OpReturn, bc.KindVoid, phi))
	return g
}

func TestStrictCatchesDanglingPhiInput(t *testing.T) {
	g := danglingPhiGraph(t)
	if err := check.Graph(g, check.Basic); err != nil {
		t.Fatalf("basic should accept the structurally valid graph: %v", err)
	}
	err := check.Graph(g, check.Strict)
	if err == nil {
		t.Fatal("strict accepted a phi input that does not dominate its predecessor")
	}
	if !strings.Contains(err.Error(), "phi") {
		t.Fatalf("error should identify the phi: %v", err)
	}
}

func TestStrictAcceptsWellFormedDiamond(t *testing.T) {
	g := ir.NewGraph(tinyMethod(t))
	entry := g.Entry()
	p := g.NewNode(ir.OpParam, bc.KindInt)
	g.Append(entry, p)
	b1 := g.NewBlock()
	b2 := g.NewBlock()
	join := g.NewBlock()
	g.SetTerm(entry, g.NewNode(ir.OpIf, bc.KindVoid, p), b1, b2)
	c1 := g.ConstInt(b1, 1)
	c2 := g.ConstInt(b2, 2)
	g.SetTerm(b1, g.NewNode(ir.OpGoto, bc.KindVoid), join)
	g.SetTerm(b2, g.NewNode(ir.OpGoto, bc.KindVoid), join)
	phi := g.AddPhi(join, bc.KindInt, c1, c2)
	g.SetTerm(join, g.NewNode(ir.OpReturn, bc.KindVoid, phi))
	if err := check.Graph(g, check.Strict); err != nil {
		t.Fatalf("strict rejected a well-formed diamond: %v", err)
	}
}

// TestOffIsFree pins the zero-overhead guarantee of the disabled checker:
// no allocations and no dominator trees on the Off path.
func TestOffIsFree(t *testing.T) {
	m := tinyMethod(t)
	g, err := build.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	before := ir.DomTreesBuilt()
	allocs := testing.AllocsPerRun(100, func() {
		if err := check.Graph(g, check.Off); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("check.Graph at Off allocated %v times per run, want 0", allocs)
	}
	if got := ir.DomTreesBuilt(); got != before {
		t.Fatalf("check.Graph at Off built %d dominator trees", got-before)
	}
	if err := check.Graph(g, check.Strict); err != nil {
		t.Fatal(err)
	}
	if got := ir.DomTreesBuilt(); got <= before {
		t.Fatal("strict check should have built a dominator tree")
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want check.Level
	}{
		{"", check.Off}, {"off", check.Off}, {"basic", check.Basic}, {"strict", check.Strict},
	} {
		got, err := check.ParseLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := check.ParseLevel("bogus"); err == nil {
		t.Error("ParseLevel(bogus) should fail")
	}
}

func TestEffectiveFloorsByEnv(t *testing.T) {
	// The env level is latched once per process, so the test asserts the
	// floor relation rather than a fixed value: it must hold both in a
	// plain run and under PEA_CHECK=strict.
	for _, l := range []check.Level{check.Off, check.Basic, check.Strict} {
		e := check.Effective(l)
		if e < l || e < check.Env() {
			t.Errorf("Effective(%v) = %v, below max(%v, %v)", l, e, l, check.Env())
		}
	}
	if check.Max(check.Basic, check.Strict) != check.Strict {
		t.Error("Max(basic, strict) != strict")
	}
}

func TestDiffDumps(t *testing.T) {
	before := "a\nb\nc\nd\ne\nf\ng\nh\n"
	after := "a\nb\nc\nd\nX\nf\ng\nh\n"
	d := check.DiffDumps(before, after)
	if !strings.Contains(d, "- e") || !strings.Contains(d, "+ X") {
		t.Fatalf("diff missing changed lines:\n%s", d)
	}
	if strings.Contains(d, "- a") || strings.Contains(d, "+ h") {
		t.Fatalf("diff should elide the common prefix/suffix:\n%s", d)
	}
	if check.DiffDumps("same\n", "same\n") != "(dumps identical)" {
		t.Fatal("identical dumps should say so")
	}
}
