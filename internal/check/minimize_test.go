package check_test

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/check"
)

// assemble builds a single-class program around one method body.
func assemble(t *testing.T, f func(*bc.MethodAsm)) (*bc.Program, *bc.Method) {
	t.Helper()
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	f(m)
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	return p, p.ClassByName("C").MethodByName("run")
}

func containsOp(m *bc.Method, op bc.Op) bool {
	for i := range m.Code {
		if m.Code[i].Op == op {
			return true
		}
	}
	return false
}

func liveLen(m *bc.Method) int {
	n := 0
	for i := range m.Code {
		if m.Code[i].Op != bc.OpNop {
			n++
		}
	}
	return n
}

// TestMinimizeShrinksAroundPredicate reduces a body with junk before and a
// dead-ish else arm after the interesting instruction (a division). The
// junk must go; the division must stay; branches into later code must be
// retargeted across the deleted ranges.
func TestMinimizeShrinksAroundPredicate(t *testing.T) {
	_, m := assemble(t, func(ma *bc.MethodAsm) {
		ma.Const(8).Pop().Const(9).Pop() // junk
		ma.Load(0).Const(0).IfCmp(bc.CondLT, "neg")
		ma.Const(7).Pop() // junk inside the taken arm
		ma.Load(0).Const(2).Div().ReturnValue()
		ma.Label("neg").Const(0).Load(0).Sub().ReturnValue()
	})
	if err := bc.Verify(m); err != nil {
		t.Fatal(err)
	}
	origLive := liveLen(m)
	eliminated := check.Minimize(m, func() bool { return containsOp(m, bc.OpDiv) })

	if !containsOp(m, bc.OpDiv) {
		t.Fatal("minimizer removed the instruction the predicate requires")
	}
	if err := bc.Verify(m); err != nil {
		t.Fatalf("minimized body does not verify: %v", err)
	}
	if eliminated < 6 {
		t.Fatalf("eliminated only %d instructions from %d", eliminated, origLive)
	}
	if live := liveLen(m); live >= origLive {
		t.Fatalf("live instruction count did not shrink: %d -> %d", origLive, live)
	}
}

// TestMinimizePanicCountsAsFailure: a predicate that panics is a failure
// reproduction (the crash being minimized may be a compiler panic), so the
// body collapses to the smallest verifying program.
func TestMinimizePanicCountsAsFailure(t *testing.T) {
	_, m := assemble(t, func(ma *bc.MethodAsm) {
		ma.Const(1).Pop().Const(2).Pop().Const(3).ReturnValue()
	})
	check.Minimize(m, func() bool { panic("compiler crash") })
	if live := liveLen(m); live > 2 {
		t.Fatalf("panic predicate should minimize to the smallest verifying body, got %d live instrs: %v", live, m.Code)
	}
	if err := bc.Verify(m); err != nil {
		t.Fatal(err)
	}
}

// TestMinimizeRestoresOnFailedCandidate: when no reduction is possible the
// body is left exactly as it was.
func TestMinimizeIrreducible(t *testing.T) {
	_, m := assemble(t, func(ma *bc.MethodAsm) {
		ma.Load(0).Const(2).Div().ReturnValue()
	})
	orig := append([]bc.Instr(nil), m.Code...)
	pred := func() bool {
		// Requires every original op to survive.
		return containsOp(m, bc.OpDiv) && containsOp(m, bc.OpLoad) &&
			containsOp(m, bc.OpConst) && containsOp(m, bc.OpReturnValue)
	}
	if n := check.Minimize(m, pred); n != 0 {
		t.Fatalf("eliminated %d from an irreducible body", n)
	}
	if len(m.Code) != len(orig) {
		t.Fatalf("body changed: %v -> %v", orig, m.Code)
	}
	for i := range orig {
		if orig[i] != m.Code[i] {
			t.Fatalf("instruction %d changed: %v -> %v", i, orig[i], m.Code[i])
		}
	}
}

// TestMinimizeShrinksExceptionTable: the reducer must delete junk inside
// and around a protected range (shifting Start/End/Handler like branch
// targets), shave the range down to the trapping instruction, and drop
// table entries that are not needed to reproduce.
func TestMinimizeShrinksExceptionTable(t *testing.T) {
	_, m := assemble(t, func(ma *bc.MethodAsm) {
		r := ma.NewLocal(bc.KindRef)
		ma.Const(8).Pop().Const(9).Pop() // junk before the try
		ma.Label("ts")
		ma.Const(1).Pop().Const(2).Pop() // junk inside the try
		ma.ConstNull().Throw()
		ma.Label("te")
		ma.Label("h").Store(r).Load(0).ReturnValue()
		ma.Exception("ts", "te", "h", nil)
		ma.Exception("ts", "te", "h", nil) // redundant second entry
	})
	if err := bc.Verify(m); err != nil {
		t.Fatal(err)
	}
	// Reproduction requires a throw that some entry still covers.
	covered := func() bool {
		for pc := range m.Code {
			if m.Code[pc].Op != bc.OpThrow {
				continue
			}
			for i := range m.ExceptionTable {
				if m.ExceptionTable[i].Covers(pc) {
					return true
				}
			}
		}
		return false
	}
	eliminated := check.Minimize(m, covered)

	if !covered() {
		t.Fatal("minimizer broke the covered-throw predicate")
	}
	if err := bc.Verify(m); err != nil {
		t.Fatalf("minimized body does not verify: %v", err)
	}
	if eliminated < 4 {
		t.Fatalf("eliminated only %d", eliminated)
	}
	if len(m.ExceptionTable) != 1 {
		t.Fatalf("redundant table entry survived: %v", m.ExceptionTable)
	}
	if e := m.ExceptionTable[0]; e.End-e.Start != 1 {
		t.Fatalf("protected range not shaved to the throw: %+v (code %v)", e, m.Code)
	}
}
