// Package broker is the VM's concurrent JIT compile broker — the queue +
// cache + worker-pool shape HotSpot's CompileBroker gives its tiered
// compilation system. Hot methods are submitted with their hotness; the
// broker deduplicates in-flight requests, keeps a bounded
// hotness-prioritized queue, compiles on a pool of worker goroutines, and
// publishes finished code through an atomic installation callback while the
// interpreter keeps running (true tier-up). A compiled-code cache keyed by
// (method, EA mode, speculation, profile fingerprint) lets recompiles after
// deoptimization-invalidation and repeated benchmark runs replay earlier
// work instead of re-running the build→inline→GVN→PEA pipeline.
//
// A broker with zero workers is synchronous: Submit compiles (or replays
// from cache) on the calling goroutine and returns with the code installed.
// That mode is the VM default, preserving the deterministic
// interpreter-vs-compiled oracles the differential tests rely on.
package broker

import (
	"container/heap"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"pea/internal/bc"
	"pea/internal/check"
	"pea/internal/ir"
	"pea/internal/obs"
	"pea/internal/obs/flight"
)

// Options configures a Broker.
type Options struct {
	// Workers is the number of background compile goroutines. 0 makes the
	// broker synchronous (compiles run on the submitting goroutine);
	// negative selects GOMAXPROCS.
	Workers int
	// QueueCap bounds the pending queue (default 256). Submissions beyond
	// the bound are rejected (the method stays interpreted and may be
	// resubmitted later) so a compilation storm cannot grow memory
	// without limit.
	QueueCap int
	// Cache is the compiled-code cache. nil creates a private cache; pass
	// a shared one to reuse artifacts across VMs running the same
	// program.
	Cache *Cache
	// Store, when non-nil, is the disk-backed artifact store behind the
	// in-memory cache: a memory miss tries the store before running the
	// pipeline (loads are decoded against the submission's Resolver and
	// re-verified at the install boundary; anything suspect is a miss),
	// and fresh compiles are written through so later processes sharing
	// the directory warm-start.
	Store *Store
	// Summaries is the in-memory cache of inter-procedural escape-summary
	// sets (see Broker.Summaries). nil creates a private cache; pass a
	// shared one so VMs with separate brokers still amortize the
	// whole-program analysis.
	Summaries *SummaryCache
	// Resolver decodes store artifacts for submissions made through
	// Submit (per-submission hooks carry their own; see SubmitHooks).
	// Typically the *bc.Program the broker's VM runs. nil disables store
	// loads for default submissions.
	Resolver ir.Resolver

	// Compile runs the full pipeline (and backend lowering) for one
	// request, returning the installable artifact. It must be safe for
	// concurrent use (the VM's pipeline carries no shared mutable state
	// beyond the locked profile and observability registries). A bare
	// *ir.Graph is a valid artifact for graph-level consumers.
	Compile func(m *bc.Method, k Key) (Artifact, error)
	// Install publishes finished code. It is called from worker
	// goroutines (or the submitting goroutine in synchronous mode) and
	// must publish atomically. fromCache reports a code-cache replay.
	Install func(m *bc.Method, k Key, a Artifact, fromCache bool)
	// Fail records a permanent compilation failure. The key identifies
	// which artifact failed (a standard compile vs. one OSR entry point
	// of the same method).
	Fail func(m *bc.Method, k Key, err error)

	// InjectFault, when non-nil, is invoked at named fault points
	// (FaultCompile, FaultInstall) with the method's qualified name. It
	// exists to deterministically drive the containment layer — a hook
	// that panics or sleeps simulates a compiler crash or a runaway
	// compile at an exact point, under the race detector. When nil, New
	// installs a hook parsed from the PEA_FAULT environment variable (see
	// FaultFromEnv); production runs with the variable unset pay a single
	// nil check per compile.
	InjectFault func(point, method string)

	// Check is the sanitizer level applied to freshly compiled graphs
	// before they enter the code cache. Cache entries are shared across
	// VMs and replayed without re-running the pipeline, so a corrupt
	// graph would be installed everywhere; re-verifying at the install
	// boundary makes the cache a trust boundary. The PEA_CHECK
	// environment variable floors this level.
	Check check.Level

	// Sink receives broker lifecycle events; Metrics (via the sink) keeps
	// the queue-depth/worker-utilization/cache gauges current. Both are
	// nil-safe.
	Sink *obs.Sink

	// Flight, when non-nil, is the VM's always-on flight recorder. The
	// broker records compile start/finish (with wall time and outcome),
	// queue-depth changes, and contained compiler panics there. A nil
	// recorder is inert.
	Flight *flight.Recorder
}

func (o Options) workers() int {
	if o.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o Options) queueCap() int {
	if o.QueueCap > 0 {
		return o.QueueCap
	}
	return 256
}

// Stats is a point-in-time snapshot of broker counters.
type Stats struct {
	Submitted   int64 // accepted submissions (queued or compiled inline)
	Compiled    int64 // pipeline runs completed successfully
	Failed      int64 // pipeline runs that errored (including contained panics)
	Panics      int64 // pipeline runs that panicked and were contained
	Installed   int64 // successful installations (compiled + cache replays)
	CacheHits   int64 // installations served from the in-memory code cache
	CacheMisses int64 // submissions that missed the in-memory cache
	// DiskHits counts in-memory misses resolved by loading, re-verifying,
	// and installing a persisted artifact instead of running the pipeline
	// (each also counts as a CacheMiss: hit rate over both tiers is
	// (CacheHits+DiskHits) / (CacheHits+CacheMisses)).
	DiskHits int64
	Dedup    int64 // submissions coalesced with an in-flight compile
	Rejected int64 // submissions dropped on a full queue
	MaxQueue int64 // high-water mark of the pending queue
	// BusyNS is the total wall-clock time spent resolving compilations
	// (pipeline runs and cache replays). WorkerBusyNS breaks it down per
	// background worker (empty in synchronous mode, where compiles run on
	// the submitting goroutine).
	BusyNS       int64
	WorkerBusyNS []int64
}

// Hooks carries the per-submission callbacks of one compilation request.
// A broker owned by a single VM never touches this type — its Options
// callbacks serve every submission. A broker shared by several VMs (the
// multi-tenant server) passes per-tenant Hooks through SubmitHooks so one
// worker pool compiles for all tenants while each install lands in the
// right VM's code table and each decode resolves against the right
// program.
type Hooks struct {
	// Compile, Install, and Fail mirror the Options callbacks.
	Compile func(m *bc.Method, k Key) (Artifact, error)
	Install func(m *bc.Method, k Key, a Artifact, fromCache bool)
	Fail    func(m *bc.Method, k Key, err error)
	// Resolver decodes persisted artifacts against the submitting VM's
	// program.
	Resolver ir.Resolver
}

// task is one pending compilation.
type task struct {
	m       *bc.Method
	key     Key
	hooks   *Hooks
	hotness int64
	seq     int64 // FIFO tie-break for equal hotness (determinism)
}

// taskHeap is a max-heap by hotness, FIFO within a hotness level.
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].hotness != h[j].hotness {
		return h[i].hotness > h[j].hotness
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// inflightKey identifies one compilation unit for deduplication: either a
// standard compile of a method or one of its OSR entry points. Requests
// for distinct entry points of the same method proceed independently.
type inflightKey struct {
	m        *bc.Method
	entryBCI int
}

// Broker coordinates compilations.
type Broker struct {
	opts  Options
	cache *Cache
	// summaries is the memory tier for whole-program escape-summary sets;
	// sumFlight collapses concurrent first computations per program
	// fingerprint (guarded by sumFlightMu).
	summaries   *SummaryCache
	sumFlightMu sync.Mutex
	sumFlight   map[uint64]*sync.Once
	// defaults serves Submit calls (the single-VM path); SubmitHooks
	// overrides per submission.
	defaults Hooks

	mu       sync.Mutex
	cond     *sync.Cond // signals workers (work available / closing)
	idle     *sync.Cond // signals Drain (queue empty, workers idle)
	queue    taskHeap
	inflight map[inflightKey]bool // queued or being compiled
	busy     int
	seq      int64
	closed   bool
	stats    Stats
	// workerBusy accumulates per-worker compile wall time (guarded by mu;
	// indexed by worker; empty in synchronous mode).
	workerBusy []int64

	wg sync.WaitGroup
}

// New creates a broker and starts its workers.
func New(opts Options) *Broker {
	if opts.InjectFault == nil {
		opts.InjectFault = FaultFromEnv()
	}
	b := &Broker{
		opts:  opts,
		cache: opts.Cache,
		defaults: Hooks{
			Compile:  opts.Compile,
			Install:  opts.Install,
			Fail:     opts.Fail,
			Resolver: opts.Resolver,
		},
		inflight: make(map[inflightKey]bool),
	}
	if b.cache == nil {
		b.cache = NewCache()
	}
	b.summaries = opts.Summaries
	if b.summaries == nil {
		b.summaries = NewSummaryCache()
	}
	b.cond = sync.NewCond(&b.mu)
	b.idle = sync.NewCond(&b.mu)
	b.workerBusy = make([]int64, opts.workers())
	for i := 0; i < opts.workers(); i++ {
		b.wg.Add(1)
		go b.worker(i)
	}
	return b
}

// Cache returns the broker's code cache.
func (b *Broker) Cache() *Cache { return b.cache }

// Store returns the broker's persistent artifact store, or nil when the
// broker is memory-only.
func (b *Broker) Store() *Store { return b.opts.Store }

// Async reports whether the broker compiles on background workers.
func (b *Broker) Async() bool { return b.opts.workers() > 0 }

// Pending reports whether the compilation unit (m, entryBCI) — entryBCI is
// NoOSR for a standard compile — is queued or being compiled. It is a
// cheap pre-check so hot call paths can skip building a cache key for
// requests already in flight.
func (b *Broker) Pending(m *bc.Method, entryBCI int) bool {
	if !b.Async() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inflight[inflightKey{m, entryBCI}]
}

// Submit requests compilation of m under key k with the given hotness
// (typically the invocation count). In synchronous mode the compilation
// (or cache replay) completes before Submit returns. In asynchronous mode
// Submit enqueues and returns immediately; duplicates of in-flight methods
// are coalesced and submissions over the queue bound are rejected. The
// return value reports whether the submission was accepted.
func (b *Broker) Submit(m *bc.Method, hotness int64, k Key) bool {
	return b.SubmitHooks(m, hotness, k, nil)
}

// SubmitHooks is Submit with per-submission callbacks, the entry point for
// several VMs sharing one broker (worker pool + cache + store): each
// tenant submits with its own Hooks so installs and failures land in the
// submitting VM. nil hooks (and nil individual fields) fall back to the
// broker's Options callbacks.
//
// Deduplication nuance under sharing: concurrent in-flight submissions of
// the same compilation unit coalesce, and only the first submitter's
// hooks run. The losing tenant's VM simply resubmits on its next hot call
// and replays the now-cached artifact — convergent, at the cost of one
// extra trip through the queue.
func (b *Broker) SubmitHooks(m *bc.Method, hotness int64, k Key, h *Hooks) bool {
	h = b.resolveHooks(h)
	if !b.Async() {
		b.mu.Lock()
		b.stats.Submitted++
		b.mu.Unlock()
		b.opts.Sink.BrokerSubmit(m.QualifiedName(), int(hotness), 0)
		b.compileOne(&task{m: m, key: k, hooks: h, hotness: hotness}, -1)
		return true
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	ik := inflightKey{m, k.EntryBCI}
	if b.inflight[ik] {
		b.stats.Dedup++
		b.mu.Unlock()
		b.opts.Sink.BrokerDedup(m.QualifiedName())
		return false
	}
	if len(b.queue) >= b.opts.queueCap() {
		b.stats.Rejected++
		b.mu.Unlock()
		b.opts.Sink.BrokerReject(m.QualifiedName(), "queue-full")
		return false
	}
	b.seq++
	heap.Push(&b.queue, &task{m: m, key: k, hooks: h, hotness: hotness, seq: b.seq})
	b.inflight[ik] = true
	b.stats.Submitted++
	if int64(len(b.queue)) > b.stats.MaxQueue {
		b.stats.MaxQueue = int64(len(b.queue))
	}
	depth := len(b.queue)
	highwater := b.stats.MaxQueue
	b.mu.Unlock()

	b.opts.Sink.BrokerSubmit(m.QualifiedName(), int(hotness), depth)
	b.opts.Flight.Record(flight.KindQueueDepth, int32(m.ID), -1, int64(depth), highwater, 0)
	b.setGauge(obs.GaugeBrokerQueueDepth, int64(depth))
	b.setGauge(obs.GaugeBrokerQueueHighWater, highwater)
	b.cond.Signal()
	return true
}

// resolveHooks fills nil hook fields from the broker's Options callbacks.
func (b *Broker) resolveHooks(h *Hooks) *Hooks {
	if h == nil {
		return &b.defaults
	}
	r := *h
	if r.Compile == nil {
		r.Compile = b.defaults.Compile
	}
	if r.Install == nil {
		r.Install = b.defaults.Install
	}
	if r.Fail == nil {
		r.Fail = b.defaults.Fail
	}
	if r.Resolver == nil {
		r.Resolver = b.defaults.Resolver
	}
	return &r
}

// worker is the compile loop of one background goroutine; i is the
// worker's index, used for per-worker busy-time accounting.
func (b *Broker) worker(i int) {
	defer b.wg.Done()
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.closed {
			b.cond.Wait()
		}
		if len(b.queue) == 0 && b.closed {
			b.mu.Unlock()
			return
		}
		t := heap.Pop(&b.queue).(*task)
		b.busy++
		depth, busy := len(b.queue), b.busy
		b.mu.Unlock()

		b.setGauge(obs.GaugeBrokerQueueDepth, int64(depth))
		b.setGauge(obs.GaugeBrokerWorkersBusy, int64(busy))

		b.compileOne(t, i)

		b.mu.Lock()
		delete(b.inflight, inflightKey{t.m, t.key.EntryBCI})
		b.busy--
		busy = b.busy
		if len(b.queue) == 0 && b.busy == 0 {
			b.idle.Broadcast()
		}
		b.mu.Unlock()
		b.setGauge(obs.GaugeBrokerWorkersBusy, int64(busy))
	}
}

// compileOne resolves one task: cache replay or pipeline run, then
// installation (or failure recording). worker is the background worker's
// index for busy-time accounting (-1 for the synchronous submit path).
func (b *Broker) compileOne(t *task, worker int) {
	fl := b.opts.Flight
	start := time.Now()
	defer func() {
		el := time.Since(start).Nanoseconds()
		b.mu.Lock()
		b.stats.BusyNS += el
		if worker >= 0 && worker < len(b.workerBusy) {
			b.workerBusy[worker] += el
		}
		b.mu.Unlock()
	}()

	name := t.m.QualifiedName()
	fl.Record(flight.KindCompileStart, int32(t.m.ID), int32(t.key.EntryBCI), t.hotness, 0, 0)
	if a, ok := b.cache.Get(t.key); ok {
		b.mu.Lock()
		b.stats.CacheHits++
		b.stats.Installed++
		b.mu.Unlock()
		b.opts.Sink.BrokerInstall(name, "cache")
		fl.Record(flight.KindCompileFinish, int32(t.m.ID), int32(t.key.EntryBCI),
			time.Since(start).Nanoseconds(), 0, fl.Reason("cache"))
		if t.hooks.Install != nil {
			t.hooks.Install(t.m, t.key, a, true)
		}
		return
	}
	b.mu.Lock()
	b.stats.CacheMisses++
	b.mu.Unlock()

	// Second tier: a persisted artifact from an earlier process (or an
	// entry evicted from the bounded memory cache). Load re-verifies at
	// the install boundary; anything suspect was already counted as a
	// rejection by the store and falls through to a fresh compile.
	if b.opts.Store != nil {
		if g, ok := b.opts.Store.Load(t.key, t.hooks.Resolver, b.opts.Check); ok {
			a := b.cache.Put(t.key, g)
			b.mu.Lock()
			b.stats.DiskHits++
			b.stats.Installed++
			b.mu.Unlock()
			b.opts.Sink.BrokerInstall(name, "disk")
			fl.Record(flight.KindCompileFinish, int32(t.m.ID), int32(t.key.EntryBCI),
				time.Since(start).Nanoseconds(), 0, fl.Reason("disk"))
			b.setGauge(obs.GaugeBrokerCacheSize, int64(b.cache.Len()))
			if t.hooks.Install != nil {
				t.hooks.Install(t.m, t.key, a, true)
			}
			return
		}
	}

	a, err := b.runCompile(t, name)
	if err != nil {
		b.mu.Lock()
		b.stats.Failed++
		b.mu.Unlock()
		outcome := "error"
		if Transient(err) {
			outcome = "transient"
		}
		fl.Record(flight.KindCompileFinish, int32(t.m.ID), int32(t.key.EntryBCI),
			time.Since(start).Nanoseconds(), 1, fl.Reason(outcome))
		if t.hooks.Fail != nil {
			t.hooks.Fail(t.m, t.key, err)
		}
		return
	}
	// First writer wins so every VM sharing the cache installs the same
	// canonical artifact.
	a = b.cache.Put(t.key, a)
	// Write-through: persist the scheduled graph (not the backend-lowered
	// closure, which is process-local) so future processes warm-start.
	// Best effort — a failed write costs nothing but the counter.
	if b.opts.Store != nil {
		_ = b.opts.Store.Put(t.key, a.Graph())
	}
	b.mu.Lock()
	b.stats.Compiled++
	b.stats.Installed++
	b.mu.Unlock()
	b.opts.Sink.BrokerInstall(name, "compiled")
	fl.Record(flight.KindCompileFinish, int32(t.m.ID), int32(t.key.EntryBCI),
		time.Since(start).Nanoseconds(), 0, fl.Reason(t.key.Backend))
	b.setGauge(obs.GaugeBrokerCacheSize, int64(b.cache.Len()))
	if t.hooks.Install != nil {
		t.hooks.Install(t.m, t.key, a, false)
	}
}

// runCompile runs the pipeline for one task inside the broker's fault
// boundary: a panic anywhere in build→inline→GVN→PEA (or in an injected
// fault) is recovered, counted, reported as a broker_panic event, and
// converted into a structured *PanicError carrying the stack — HotSpot's
// CompileBroker discipline, where a crashing compile is a per-method event
// rather than a process death. Successful graphs are re-verified before
// they may enter the shared code cache.
func (b *Broker) runCompile(t *task, name string) (a Artifact, err error) {
	defer func() {
		if r := recover(); r != nil {
			a = nil
			err = &PanicError{Method: name, Value: r, Stack: string(debug.Stack())}
			b.mu.Lock()
			b.stats.Panics++
			b.mu.Unlock()
			b.opts.Sink.BrokerPanic(name, fmt.Sprint(r))
			fl := b.opts.Flight
			fl.Record(flight.KindPanic, int32(t.m.ID), int32(t.key.EntryBCI),
				0, 0, fl.Reason(fmt.Sprint(r)))
		}
	}()
	if f := b.opts.InjectFault; f != nil {
		f(FaultCompile, name)
	}
	a, err = t.hooks.Compile(t.m, t.key)
	if err == nil {
		// Re-verify before the artifact becomes shared state: the cache
		// replays artifacts into other VMs without another pipeline run.
		if cerr := check.Graph(a.Graph(), check.Effective(b.opts.Check)); cerr != nil {
			err = fmt.Errorf("broker: refusing to install %s: %w", name, cerr)
			b.opts.Sink.CheckViolation("broker-install", name, cerr.Error(), "")
		}
	}
	if err == nil {
		if f := b.opts.InjectFault; f != nil {
			f(FaultInstall, name)
		}
	}
	return a, err
}

func (b *Broker) setGauge(name string, v int64) {
	if s := b.opts.Sink; s != nil {
		s.Metrics().SetGauge(name, v)
	}
}

// Drain blocks until the queue is empty and all workers are idle. It is
// the synchronization point for tests and benchmarks that need every
// submitted compilation resolved before measuring.
func (b *Broker) Drain() {
	if !b.Async() {
		return
	}
	b.mu.Lock()
	for len(b.queue) > 0 || b.busy > 0 {
		b.idle.Wait()
	}
	b.mu.Unlock()
}

// Close drains the queue, stops the workers, and waits for them to exit.
// The broker rejects submissions afterwards.
func (b *Broker) Close() {
	if !b.Async() {
		return
	}
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
	b.wg.Wait()
}

// Stats snapshots the broker counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	if len(b.workerBusy) > 0 {
		s.WorkerBusyNS = append([]int64(nil), b.workerBusy...)
	}
	return s
}
