package broker

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pea/internal/bc"
	"pea/internal/budget"
)

// TestSyncPanicContained pins the containment contract in synchronous
// mode: a panicking compile callback must not unwind through Submit. It
// is converted into a *PanicError (with the panicking goroutine's stack)
// delivered to the Fail callback, Install never runs, and Stats.Panics
// counts it.
func TestSyncPanicContained(t *testing.T) {
	ms := testMethods(t, 1)
	var failed error
	b := New(Options{
		Compile: func(m *bc.Method, k Key) (Artifact, error) { panic("compiler bug") },
		Install: func(m *bc.Method, k Key, a Artifact, fromCache bool) { t.Error("panicked compile installed") },
		Fail:    func(m *bc.Method, k Key, err error) { failed = err },
	})
	if !b.Submit(ms[0], 1, key(ms[0])) {
		t.Fatal("synchronous submit rejected")
	}
	var pe *PanicError
	if !errors.As(failed, &pe) {
		t.Fatalf("failure is %T (%v), want *PanicError", failed, failed)
	}
	if pe.Method != "C.m0" || pe.Value != "compiler bug" {
		t.Fatalf("PanicError = %+v", pe)
	}
	if !strings.Contains(pe.Stack, "runCompile") {
		t.Fatalf("captured stack does not show the fault boundary:\n%s", pe.Stack)
	}
	st := b.Stats()
	if st.Panics != 1 || st.Failed != 1 || st.Installed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAsyncPanicDoesNotKillWorker: a worker that contains a panic must
// keep serving the queue — later submissions still compile, the in-flight
// entry for the victim is cleared (Pending false), and Drain returns.
func TestAsyncPanicDoesNotKillWorker(t *testing.T) {
	ms := testMethods(t, 4)
	victim := ms[1]
	var mu sync.Mutex
	installed := map[*bc.Method]bool{}
	var failures []error
	b := New(Options{
		Workers: 1,
		Compile: func(m *bc.Method, k Key) (Artifact, error) {
			if m == victim {
				panic("boom on " + m.Name)
			}
			return mustBuild(m), nil
		},
		Install: func(m *bc.Method, k Key, a Artifact, fromCache bool) {
			mu.Lock()
			installed[m] = true
			mu.Unlock()
		},
		Fail: func(m *bc.Method, k Key, err error) {
			mu.Lock()
			failures = append(failures, err)
			mu.Unlock()
		},
	})
	defer b.Close()
	for _, m := range ms {
		if !b.Submit(m, 1, key(m)) {
			t.Fatalf("submit %s rejected", m.Name)
		}
	}
	b.Drain() // must return even though one compile panicked
	mu.Lock()
	defer mu.Unlock()
	for _, m := range ms {
		if m == victim {
			if installed[m] {
				t.Fatal("victim installed")
			}
			continue
		}
		if !installed[m] {
			t.Fatalf("%s not installed — worker died?", m.Name)
		}
	}
	if len(failures) != 1 {
		t.Fatalf("failures = %v, want exactly the victim", failures)
	}
	var pe *PanicError
	if !errors.As(failures[0], &pe) {
		t.Fatalf("failure is %T, want *PanicError", failures[0])
	}
	if b.Pending(victim, NoOSR) {
		t.Fatal("victim still marked in flight after containment")
	}
	if st := b.Stats(); st.Panics != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestInstallPointPanicContained: a panic injected after a successful
// compile (the FaultInstall point) is still inside the fault boundary.
func TestInstallPointPanicContained(t *testing.T) {
	ms := testMethods(t, 1)
	var failed error
	b := New(Options{
		Compile: func(m *bc.Method, k Key) (Artifact, error) { return mustBuild(m), nil },
		Install: func(m *bc.Method, k Key, a Artifact, fromCache bool) {
			t.Error("install ran past an install-point panic")
		},
		Fail: func(m *bc.Method, k Key, err error) { failed = err },
		InjectFault: func(point, method string) {
			if point == FaultInstall {
				panic("injected at install")
			}
		},
	})
	b.Submit(ms[0], 1, key(ms[0]))
	var pe *PanicError
	if !errors.As(failed, &pe) {
		t.Fatalf("failure is %T (%v), want *PanicError", failed, failed)
	}
	if st := b.Stats(); st.Panics != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTransientClassification pins which failures re-arm and which
// blacklist: only budget overruns are transient.
func TestTransientClassification(t *testing.T) {
	budErr := &budget.Err{Kind: "deadline", Phase: "opt", Method: "C.m", Limit: 1, Actual: 2}
	if !Transient(budErr) {
		t.Fatal("budget overrun must classify as transient")
	}
	if Transient(&PanicError{Method: "C.m", Value: "boom"}) {
		t.Fatal("a contained panic is a permanent failure")
	}
	if Transient(errors.New("pipeline error")) {
		t.Fatal("ordinary pipeline errors are permanent")
	}
	if Transient(nil) {
		t.Fatal("nil error is not transient")
	}
}

// TestParseFault covers the PEA_FAULT spec grammar.
func TestParseFault(t *testing.T) {
	for _, bad := range []string{"", "compile", "compile:explode", "compile:panic:0", "compile:panic:x", "compile:delay:1:notaduration"} {
		if _, err := ParseFault(bad); err == nil {
			t.Errorf("ParseFault(%q) accepted a bad spec", bad)
		}
	}

	// every=3: the hook fires on the 3rd and 6th visits only.
	hook, err := ParseFault("compile:panic:3")
	if err != nil {
		t.Fatal(err)
	}
	fires := 0
	visit := func(point string) (panicked bool) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		hook(point, "C.m")
		return false
	}
	for i := 1; i <= 6; i++ {
		if visit("compile") {
			fires++
		}
	}
	if fires != 2 {
		t.Fatalf("every=3 fired %d times in 6 visits, want 2", fires)
	}
	if visit("install") {
		t.Fatal("hook fired at a different point")
	}

	// Method filter: only matching methods panic (and non-matching
	// visits do not advance the counter window deterministically — they
	// are filtered before counting).
	hook, err = ParseFault("pea:panic:1:Loop")
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("filtered hook did not fire on matching method")
			}
		}()
		hook("pea", "Main.hotLoop")
	}()
	hook("pea", "Main.other") // must not panic

	// Delay: stalls but never fails.
	hook, err = ParseFault("compile:delay:1:1ms")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	hook("compile", "C.m")
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay action did not sleep")
	}
}
