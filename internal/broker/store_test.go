package broker

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"sync"
	"testing"
	"time"

	"pea/internal/bc"
	"pea/internal/check"
	"pea/internal/ir"
)

// testProgram assembles a program with n trivial methods, returning both so
// store tests can resolve decoded artifacts against it.
func testProgram(t *testing.T, n int) (*bc.Program, []*bc.Method) {
	t.Helper()
	a := bc.NewAssembler()
	c := a.Class("C", "")
	for i := 0; i < n; i++ {
		m := c.Method(fmt.Sprintf("m%d", i), []bc.Kind{bc.KindInt}, bc.KindInt, true)
		m.Load(0).Const(int64(i + 1)).Add().ReturnValue()
	}
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*bc.Method, n)
	for i := 0; i < n; i++ {
		out[i] = p.ClassByName("C").MethodByName(fmt.Sprintf("m%d", i))
	}
	return p, out
}

func contentKey(p *bc.Program, m *bc.Method) Key {
	return Key{MethodFP: p.MethodFingerprint(m), Name: m.QualifiedName()}
}

func TestStoreRoundTrip(t *testing.T) {
	p, ms := testProgram(t, 2)
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		g := mustBuild(m)
		k := contentKey(p, m)
		if err := s.Put(k, g); err != nil {
			t.Fatalf("put %s: %v", m.QualifiedName(), err)
		}
		back, ok := s.Load(k, p, check.Basic)
		if !ok {
			t.Fatalf("load %s: miss after put", m.QualifiedName())
		}
		if got, want := ir.Dump(back), ir.Dump(g); got != want {
			t.Fatalf("%s: store round-trip changed the graph:\n%s\nvs\n%s",
				m.QualifiedName(), got, want)
		}
		if back.Method != m {
			t.Fatalf("%s: loaded graph bound to wrong method", m.QualifiedName())
		}
	}
	st := s.Stats()
	if st.Writes != 2 || st.Hits != 2 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Len() != 2 {
		t.Fatalf("store holds %d files, want 2", s.Len())
	}
}

func TestStoreMissOnUnknownKey(t *testing.T) {
	p, ms := testProgram(t, 1)
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(contentKey(p, ms[0]), p, check.Basic); ok {
		t.Fatal("empty store returned a hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Everything on disk is untrusted: corrupt bytes, stale versions, key
// mismatches, and well-formed-but-invalid graphs must all be quiet misses.
func TestStoreRejectsBadFiles(t *testing.T) {
	p, ms := testProgram(t, 1)
	m := ms[0]
	g := mustBuild(m)
	k := contentKey(p, m)

	goodPayload, err := ir.EncodeJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	mustEnvelope := func(version int, key Key, payload []byte) []byte {
		data, err := json.Marshal(&envelope{Version: version, Key: key, Graph: payload})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	brokenGraph := func() []byte {
		// Decodes fine but fails the install-boundary check: drop the
		// entry block's terminator.
		var jg map[string]any
		if err := json.Unmarshal(goodPayload, &jg); err != nil {
			t.Fatal(err)
		}
		jg["blocks"].([]any)[0].(map[string]any)["term"] = float64(-1)
		out, err := json.Marshal(jg)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	otherKey := k
	otherKey.Fingerprint = 12345

	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("!!! not json !!!")},
		{"truncated", mustEnvelope(StoreVersion, k, goodPayload)[:40]},
		{"stale-version", mustEnvelope(StoreVersion+1, k, goodPayload)},
		{"key-mismatch", mustEnvelope(StoreVersion, otherKey, goodPayload)},
		{"undecodable-graph", mustEnvelope(StoreVersion, k, []byte(`{"method":"Nope.x"}`))},
		{"fails-check", mustEnvelope(StoreVersion, k, brokenGraph())},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.path(k), tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Load(k, p, check.Basic); ok {
				t.Fatalf("%s: corrupt file loaded as a hit", tc.name)
			}
			if st := s.Stats(); st.Rejected != 1 {
				t.Fatalf("%s: stats = %+v, want 1 rejection", tc.name, st)
			}
		})
	}
}

// Two store handles (standing in for two processes) sharing one directory:
// concurrent atomic-rename writers and readers of the same keys must never
// observe partial files or corrupt loads. Run under -race in CI.
func TestStoreSharedDirConcurrency(t *testing.T) {
	p, ms := testProgram(t, 4)
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	graphs := make([]*ir.Graph, len(ms))
	keys := make([]Key, len(ms))
	for i, m := range ms {
		graphs[i] = mustBuild(m)
		keys[i] = contentKey(p, m)
	}

	const rounds = 50
	var wg sync.WaitGroup
	for _, s := range []*Store{s1, s2} {
		s := s
		wg.Add(2)
		go func() { // writer: re-put every key repeatedly (rename races)
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range keys {
					if err := s.Put(keys[i], graphs[i]); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		}()
		go func() { // reader: loads must be full hits or clean misses
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range keys {
					if g, ok := s.Load(keys[i], p, check.Basic); ok {
						if got, want := ir.Dump(g), ir.Dump(graphs[i]); got != want {
							t.Errorf("load returned a different graph")
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, s := range []*Store{s1, s2} {
		if st := s.Stats(); st.Rejected != 0 {
			t.Fatalf("concurrent sharing produced rejections: %+v", st)
		}
	}
	// After the dust settles every key must hit.
	for i := range keys {
		if _, ok := s1.Load(keys[i], p, check.Basic); !ok {
			t.Fatalf("key %d missing after concurrent writes", i)
		}
	}
}

// The broker's two-tier lookup: a fresh broker sharing the store (new
// process, cold memory cache) must resolve submissions from disk without
// running the pipeline.
func TestBrokerDiskTier(t *testing.T) {
	p, ms := testProgram(t, 3)
	dir := t.TempDir()
	store1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	compiles := 0
	newBroker := func(s *Store) *Broker {
		return New(Options{
			Store:    s,
			Resolver: p,
			Compile: func(m *bc.Method, k Key) (Artifact, error) {
				compiles++
				return mustBuild(m), nil
			},
		})
	}
	b1 := newBroker(store1)
	for _, m := range ms {
		b1.Submit(m, 1, contentKey(p, m))
	}
	if compiles != len(ms) {
		t.Fatalf("cold run compiled %d, want %d", compiles, len(ms))
	}
	if st := store1.Stats(); st.Writes != int64(len(ms)) {
		t.Fatalf("write-through missing: %+v", st)
	}

	// "Restart": fresh broker, fresh memory cache, same directory.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b2 := newBroker(store2)
	var installed int
	for _, m := range ms {
		b2.SubmitHooks(m, 1, contentKey(p, m), &Hooks{
			Install: func(m *bc.Method, k Key, a Artifact, fromCache bool) {
				if !fromCache {
					t.Errorf("%s: disk replay reported fromCache=false", m.QualifiedName())
				}
				installed++
			},
		})
	}
	if compiles != len(ms) {
		t.Fatalf("warm restart recompiled: %d pipeline runs total, want %d", compiles, len(ms))
	}
	if installed != len(ms) {
		t.Fatalf("installed %d, want %d", installed, len(ms))
	}
	st := b2.Stats()
	if st.DiskHits != int64(len(ms)) || st.Compiled != 0 {
		t.Fatalf("broker stats = %+v, want %d disk hits and 0 compiles", st, len(ms))
	}
	// Third submission round: now in the memory cache.
	for _, m := range ms {
		b2.Submit(m, 1, contentKey(p, m))
	}
	if st := b2.Stats(); st.CacheHits != int64(len(ms)) {
		t.Fatalf("memory tier not warmed by disk loads: %+v", st)
	}
}

// TestStoreEvictionDeterministicTieBreak pins the eviction order of
// enforceMaxBytes: oldest modification time first, with ties broken by
// file name — so two stores with identical contents always expel the same
// artifacts regardless of directory-listing or write order.
func TestStoreEvictionDeterministicTieBreak(t *testing.T) {
	p, ms := testProgram(t, 4)
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if err := s.Put(contentKey(p, m), mustBuild(m)); err != nil {
			t.Fatal(err)
		}
	}

	list := func() []string {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range ents {
			if !e.IsDir() {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		return names
	}
	total := func(names []string) int64 {
		var n int64
		for _, name := range names {
			info, err := os.Stat(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			n += info.Size()
		}
		return n
	}

	names := list()
	if len(names) != 4 {
		t.Fatalf("store holds %v, want 4 files", names)
	}
	// Equal mtimes everywhere: the name alone must decide, evicting the
	// lexicographically smallest first.
	when := time.Now().Add(-time.Hour)
	for _, name := range names {
		if err := os.Chtimes(filepath.Join(dir, name), when, when); err != nil {
			t.Fatal(err)
		}
	}
	s.SetMaxBytes(total(names) - 1)
	if got, want := list(), names[1:]; !slices.Equal(got, want) {
		t.Fatalf("after name tie-break eviction: %v, want %v", got, want)
	}

	// mtime dominates the name: age the lexicographically last file and it
	// goes first even though its name sorts after every other survivor.
	names = list()
	victim := names[len(names)-1]
	older := when.Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, victim), older, older); err != nil {
		t.Fatal(err)
	}
	s.SetMaxBytes(total(names) - 1)
	if got, want := list(), names[:len(names)-1]; !slices.Equal(got, want) {
		t.Fatalf("after mtime eviction: %v, want %v", got, want)
	}
	if st := s.Stats(); st.Expelled != 2 {
		t.Fatalf("expelled = %d, want 2", st.Expelled)
	}
}
