package broker

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pea/internal/budget"
)

// PanicError is a compile pipeline panic converted into a structured,
// per-method failure by the broker's containment layer. The VM's failure
// callback inspects it (errors.As) to blacklist the artifact and capture a
// minimized crash reproducer; the captured stack makes the original
// failure debuggable offline even though the worker goroutine survived.
type PanicError struct {
	// Method is the qualified name of the method whose compile panicked.
	Method string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("broker: compiler panic in %s: %v", e.Method, e.Value)
}

// Transient classifies a compilation failure. Transient failures — budget
// violations (compile deadline, IR node bound) — are environmental: the
// same compile may succeed later, so the VM re-arms the method's hotness
// trigger with backoff instead of blacklisting it. Everything else
// (pipeline errors, checker violations, contained panics) is a permanent
// property of the method under the current compiler and pins the method to
// the interpreter.
func Transient(err error) bool { return budget.IsBudget(err) }

// Fault-injection points. The broker invokes Options.InjectFault (when
// set) with one of these names plus the method's qualified name; the VM's
// pipeline adds its own per-phase points ("build", "build-osr", "opt",
// "prune", EA-mode names, "post"). A hook that panics exercises the
// containment layer exactly like a real compiler bug — deterministically.
const (
	// FaultCompile fires on a worker (or the submitting goroutine in
	// synchronous mode) immediately before the compile pipeline runs.
	FaultCompile = "compile"
	// FaultInstall fires after a successful compile, before the install
	// callback publishes the code.
	FaultInstall = "install"
)

// FaultFromEnv builds a fault-injection hook from the PEA_FAULT
// environment variable, or returns nil when unset. The spec grammar is
//
//	PEA_FAULT=<point>:<action>[:<every>[:<arg>]]
//
// where point names an injection point ("compile", "install", or one of
// the VM's phase points such as "pea"), action is "panic" or "delay",
// every fires the fault on every n-th visit of that point (default 1),
// and arg is the sleep duration for "delay" (default 1ms) or a method-name
// substring filter for "panic". Examples:
//
//	PEA_FAULT=compile:panic:7      panic on every 7th compile
//	PEA_FAULT=pea:panic:1:Loop     panic whenever PEA runs on *Loop*
//	PEA_FAULT=compile:delay:3:2ms  stall every 3rd compile for 2ms
//
// The returned hook is safe for concurrent use; the visit counter is
// shared across all points so "every" is deterministic for single-threaded
// submission orders and merely pseudo-random under concurrency — which is
// exactly what the fault-smoke CI job wants.
func FaultFromEnv() func(point, method string) {
	spec := os.Getenv("PEA_FAULT")
	if spec == "" {
		return nil
	}
	hook, err := ParseFault(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "broker: ignoring PEA_FAULT=%q: %v\n", spec, err)
		return nil
	}
	return hook
}

// ParseFault parses a PEA_FAULT spec (see FaultFromEnv) into a hook.
func ParseFault(spec string) (func(point, method string), error) {
	parts := strings.SplitN(spec, ":", 4)
	if len(parts) < 2 {
		return nil, fmt.Errorf("want <point>:<action>[:<every>[:<arg>]]")
	}
	point, action := parts[0], parts[1]
	every := int64(1)
	if len(parts) >= 3 && parts[2] != "" {
		n, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad every %q", parts[2])
		}
		every = n
	}
	arg := ""
	if len(parts) == 4 {
		arg = parts[3]
	}
	var sleep time.Duration
	var methodFilter string
	switch action {
	case "panic":
		methodFilter = arg
	case "delay":
		sleep = time.Millisecond
		if arg != "" {
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, fmt.Errorf("bad delay duration %q", arg)
			}
			sleep = d
		}
	default:
		return nil, fmt.Errorf("unknown action %q (want panic or delay)", action)
	}

	var visits atomic.Int64
	return func(p, method string) {
		if p != point {
			return
		}
		if methodFilter != "" && !strings.Contains(method, methodFilter) {
			return
		}
		if visits.Add(1)%every != 0 {
			return
		}
		switch action {
		case "panic":
			panic(fmt.Sprintf("injected fault at %s compiling %s", p, method))
		case "delay":
			time.Sleep(sleep)
		}
	}, nil
}
