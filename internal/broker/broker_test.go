package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/ir"
)

// testMethods assembles n trivial methods so tasks have distinct identities.
func testMethods(t *testing.T, n int) []*bc.Method {
	t.Helper()
	a := bc.NewAssembler()
	c := a.Class("C", "")
	for i := 0; i < n; i++ {
		m := c.Method(fmt.Sprintf("m%d", i), []bc.Kind{bc.KindInt}, bc.KindInt, true)
		m.Load(0).Const(1).Add().ReturnValue()
	}
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*bc.Method, n)
	for i := 0; i < n; i++ {
		out[i] = p.ClassByName("C").MethodByName(fmt.Sprintf("m%d", i))
	}
	return out
}

func key(m *bc.Method) Key {
	return Key{MethodFP: uint64(m.ID) + 1, Name: m.QualifiedName()}
}

// mustBuild produces a real, verifiable graph: the broker re-checks every
// fresh compile before caching it (and PEA_CHECK may floor that check up),
// so test compiles cannot hand back empty placeholder graphs.
func mustBuild(m *bc.Method) *ir.Graph {
	g, err := build.Build(m)
	if err != nil {
		panic(err)
	}
	return g
}

func TestSynchronousSubmitCompilesInline(t *testing.T) {
	ms := testMethods(t, 1)
	var installed []*bc.Method
	b := New(Options{
		Workers: 0,
		Compile: func(m *bc.Method, k Key) (Artifact, error) { return mustBuild(m), nil },
		Install: func(m *bc.Method, k Key, a Artifact, fromCache bool) {
			if fromCache {
				t.Error("first compile must not come from cache")
			}
			installed = append(installed, m)
		},
	})
	if b.Async() {
		t.Fatal("zero workers must be synchronous")
	}
	if !b.Submit(ms[0], 10, key(ms[0])) {
		t.Fatal("synchronous submit rejected")
	}
	if len(installed) != 1 || installed[0] != ms[0] {
		t.Fatalf("installed = %v, want [m0]", installed)
	}
	st := b.Stats()
	if st.Submitted != 1 || st.Compiled != 1 || st.Installed != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheReplay(t *testing.T) {
	ms := testMethods(t, 1)
	compiles := 0
	var fromCacheSeen []bool
	b := New(Options{
		Compile: func(m *bc.Method, k Key) (Artifact, error) { compiles++; return mustBuild(m), nil },
		Install: func(m *bc.Method, k Key, a Artifact, fromCache bool) {
			fromCacheSeen = append(fromCacheSeen, fromCache)
		},
	})
	k := key(ms[0])
	b.Submit(ms[0], 1, k)
	b.Submit(ms[0], 1, k)
	if compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (second submit replays from cache)", compiles)
	}
	want := []bool{false, true}
	for i, fc := range fromCacheSeen {
		if fc != want[i] {
			t.Fatalf("fromCache sequence = %v, want %v", fromCacheSeen, want)
		}
	}
	if st := b.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A different fingerprint is a different artifact.
	k2 := key(ms[0])
	k2.Fingerprint = 99
	b.Submit(ms[0], 1, k2)
	if compiles != 2 {
		t.Fatalf("compiles = %d, want 2 after fingerprint change", compiles)
	}
}

func TestCompileFailureRoutesToFail(t *testing.T) {
	ms := testMethods(t, 1)
	boom := errors.New("boom")
	var failed error
	b := New(Options{
		Compile: func(m *bc.Method, k Key) (Artifact, error) { return nil, boom },
		Install: func(m *bc.Method, k Key, a Artifact, fromCache bool) { t.Error("failed compile installed") },
		Fail:    func(m *bc.Method, k Key, err error) { failed = err },
	})
	b.Submit(ms[0], 1, key(ms[0]))
	if !errors.Is(failed, boom) {
		t.Fatalf("failure not recorded: %v", failed)
	}
	if st := b.Stats(); st.Failed != 1 || st.Installed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAsyncDedupAndQueueBound(t *testing.T) {
	ms := testMethods(t, 8)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	b := New(Options{
		Workers:  1,
		QueueCap: 2,
		Compile: func(m *bc.Method, k Key) (Artifact, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			return mustBuild(m), nil
		},
	})
	// LIFO defers: release the parked worker first, then Close can join it.
	defer b.Close()
	defer close(release)

	if !b.Submit(ms[0], 1, key(ms[0])) {
		t.Fatal("first async submit rejected")
	}
	<-started // worker is now parked inside Compile for m0
	if !b.Pending(ms[0], 0) {
		t.Fatal("m0 must be pending while compiling")
	}
	if b.Submit(ms[0], 1, key(ms[0])) {
		t.Fatal("duplicate of in-flight method must coalesce")
	}
	if !b.Submit(ms[1], 1, key(ms[1])) || !b.Submit(ms[2], 1, key(ms[2])) {
		t.Fatal("submissions within the bound rejected")
	}
	if b.Submit(ms[3], 1, key(ms[3])) {
		t.Fatal("submission over the queue bound accepted")
	}
	st := b.Stats()
	if st.Dedup != 1 || st.Rejected != 1 || st.Submitted != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAsyncPriorityOrder(t *testing.T) {
	ms := testMethods(t, 5)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var mu sync.Mutex
	var order []*bc.Method
	b := New(Options{
		Workers: 1,
		Compile: func(m *bc.Method, k Key) (Artifact, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			mu.Lock()
			order = append(order, m)
			mu.Unlock()
			if m == ms[0] {
				<-release
			}
			return mustBuild(m), nil
		},
	})
	defer b.Close()

	// Park the worker on ms[0], then queue the rest with mixed hotness.
	b.Submit(ms[0], 1, key(ms[0]))
	<-started
	b.Submit(ms[1], 5, key(ms[1]))
	b.Submit(ms[2], 50, key(ms[2]))
	b.Submit(ms[3], 5, key(ms[3])) // ties with ms[1]; FIFO within a level
	b.Submit(ms[4], 500, key(ms[4]))
	close(release)
	b.Drain()

	want := []*bc.Method{ms[0], ms[4], ms[2], ms[1], ms[3]}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("compiled %d methods, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("compile order[%d] = %s, want %s", i, order[i].Name, want[i].Name)
		}
	}
	if st := b.Stats(); st.MaxQueue != 4 {
		t.Fatalf("max queue = %d, want 4", st.MaxQueue)
	}
}

func TestDrainWaitsForWorkers(t *testing.T) {
	ms := testMethods(t, 6)
	var done int64
	var mu sync.Mutex
	b := New(Options{
		Workers: 3,
		Compile: func(m *bc.Method, k Key) (Artifact, error) {
			mu.Lock()
			done++
			mu.Unlock()
			return mustBuild(m), nil
		},
	})
	defer b.Close()
	for _, m := range ms {
		b.Submit(m, 1, key(m))
	}
	b.Drain()
	mu.Lock()
	defer mu.Unlock()
	if done != int64(len(ms)) {
		t.Fatalf("drained with %d/%d compiles done", done, len(ms))
	}
}

func TestClosedBrokerRejects(t *testing.T) {
	ms := testMethods(t, 1)
	b := New(Options{
		Workers: 1,
		Compile: func(m *bc.Method, k Key) (Artifact, error) { return mustBuild(m), nil },
	})
	b.Close()
	if b.Submit(ms[0], 1, key(ms[0])) {
		t.Fatal("closed broker accepted a submission")
	}
}

func TestCacheFirstWriterWins(t *testing.T) {
	ms := testMethods(t, 1)
	c := NewCache()
	k := key(ms[0])
	g1, g2 := new(ir.Graph), new(ir.Graph)
	if got := c.Put(k, g1); got != g1 {
		t.Fatal("first Put must keep its graph")
	}
	if got := c.Put(k, g2); got != g1 {
		t.Fatal("second Put must return the already-published graph")
	}
	if g, ok := c.Get(k); !ok || g != g1 {
		t.Fatal("Get must observe the canonical artifact")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestNilCacheAlwaysMisses(t *testing.T) {
	var c *Cache
	ms := testMethods(t, 1)
	if _, ok := c.Get(key(ms[0])); ok {
		t.Fatal("nil cache hit")
	}
	g := new(ir.Graph)
	if c.Put(key(ms[0]), g) != g {
		t.Fatal("nil cache Put must pass the graph through")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has length")
	}
}
