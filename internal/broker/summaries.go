package broker

import (
	"sync"
	"sync/atomic"

	"pea/internal/bc"
	"pea/internal/summary"
)

// SummaryCache is the in-memory tier for inter-procedural escape-summary
// sets, keyed by program fingerprint. Summary computation is whole-program
// (call graph + SCC fixpoint over every method), so it is amortized once
// per program, not per compilation: every tenant of a shared broker running
// the same program content reuses one set. A nil *SummaryCache is valid
// and always misses.
type SummaryCache struct {
	mu     sync.RWMutex
	sets   map[uint64]*summary.Set
	hits   atomic.Int64
	misses atomic.Int64
}

// NewSummaryCache creates an empty summary cache.
func NewSummaryCache() *SummaryCache {
	return &SummaryCache{sets: make(map[uint64]*summary.Set)}
}

// Get returns the cached set for a program fingerprint, counting a hit or
// miss.
func (c *SummaryCache) Get(fp uint64) (*summary.Set, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.RLock()
	s := c.sets[fp]
	c.mu.RUnlock()
	if s == nil {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return s, true
}

// Put stores the set for a program fingerprint. First writer wins, so
// concurrent computations converge on one canonical set.
func (c *SummaryCache) Put(fp uint64, s *summary.Set) *summary.Set {
	if c == nil || s == nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.sets[fp]; ok {
		return prev
	}
	c.sets[fp] = s
	return s
}

// Stats returns cumulative hit and miss counts.
func (c *SummaryCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// SummaryCache returns the broker's summary cache (never nil).
func (b *Broker) SummaryCache() *SummaryCache { return b.summaries }

// Summaries resolves the program's inter-procedural summary set through the
// broker's tiers: the in-memory cache, then the persistent store (a warm
// restart loads and re-validates the persisted set instead of re-analyzing
// the program), then compute — whose result is published to both tiers so
// later tenants and processes skip the analysis. The singleflight group
// collapses concurrent first requests for the same program onto one
// computation; compute is never invoked twice for one fingerprint.
func (b *Broker) Summaries(p *bc.Program, compute func() *summary.Set) *summary.Set {
	fp := p.Fingerprint()
	if s, ok := b.summaries.Get(fp); ok {
		b.emitSummarySource(s, "cache")
		return s
	}
	b.sumFlightMu.Lock()
	if b.sumFlight == nil {
		b.sumFlight = make(map[uint64]*sync.Once)
	}
	once := b.sumFlight[fp]
	if once == nil {
		once = new(sync.Once)
		b.sumFlight[fp] = once
	}
	b.sumFlightMu.Unlock()
	once.Do(func() {
		if s, ok := b.opts.Store.LoadSummaries(p); ok {
			b.summaries.Put(fp, s)
			b.emitSummarySource(s, "store")
			return
		}
		s := compute()
		if s == nil {
			return
		}
		b.summaries.Put(fp, s)
		// Persist-through is best-effort: a write failure leaves the set
		// cached in memory, and the store counts it in WriteErrors.
		_ = b.opts.Store.PutSummaries(p, s)
	})
	s, _ := b.summaries.Get(fp)
	return s
}

// emitSummarySource reports a tier hit to the sink with the set's headline
// numbers, mirroring the summary_ready event Compute emits on a cold run.
func (b *Broker) emitSummarySource(s *summary.Set, source string) {
	if b.opts.Sink == nil || s == nil {
		return
	}
	st := s.Stats()
	b.opts.Sink.SummaryReady(st.Methods, st.NoEscape, st.Preds, source)
}
