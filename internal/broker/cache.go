package broker

import (
	"sync"
	"sync/atomic"

	"pea/internal/ir"
)

// Key identifies one compilation product. Two compiles with equal keys are
// guaranteed to produce interchangeable code:
//
//   - MethodFP is the content fingerprint of the method within its linked
//     program (bc.Program.MethodFingerprint): a stable hash over the whole
//     program's bytecode plus the method's qualified name and signature.
//     Hashing the whole program (not just the one method) is what makes
//     the key sound under inlining — an artifact may embed any reachable
//     callee body, so any program change must produce a fresh key. Because
//     the fingerprint is derived from content, not pointer identity, equal
//     keys arise across independent links of the same source and across
//     process restarts, which is what lets artifacts persist on disk and
//     be shared between processes.
//   - Name is the method's qualified name ("Class.method"). It is
//     redundant with MethodFP for equality (the fingerprint already covers
//     it) but kept in the key so that cache entries, persisted envelopes,
//     and diagnostics remain self-describing, and so that a fingerprint
//     collision between two different methods cannot alias silently.
//   - Mode is the escape-analysis configuration ordinal (vm.EAMode).
//   - Spec records whether speculative branch pruning was applied. A
//     method invalidated by deoptimization recompiles under Spec=false,
//     which is a different key — the non-speculative artifact is cached
//     separately and replayed on later invalidations instead of re-running
//     the pipeline.
//   - Fingerprint condenses the profile information the pipeline consumes
//     (monomorphic call-site targets for devirtualization, branch-pruning
//     verdicts when speculating; see interp.Profile.Fingerprint). Profiles
//     that would drive the compiler to different decisions hash
//     differently, so stale code is never replayed.
//   - EntryBCI distinguishes on-stack-replacement compilations: NoOSR for
//     a regular method compile, or the loop-header bytecode index of the
//     alternate OSR entry. OSR artifacts for different headers of the same
//     method coexist in the cache alongside the standard compile.
//   - Backend names the execution backend the artifact was lowered for
//     ("oracle", "closure"; empty when the caller caches plain graphs).
//     Artifacts lowered by one backend are never replayed into a VM
//     running another.
//   - Summaries records whether the pipeline consumed inter-procedural
//     escape summaries (internal/summary). Summary-informed code embeds
//     callee facts (kept-virtual call arguments, inlining order), so a
//     summaries-on artifact must never replay into a summaries-off VM or
//     vice versa; the two configurations cache side by side. MethodFP
//     already covers the whole program's bytecode, so the summaries
//     themselves need no separate fingerprint here.
//
// The key holds no pointers, so it round-trips through the persisted
// artifact envelope (see Store) unchanged.
type Key struct {
	MethodFP    uint64
	Name        string
	Mode        int
	Spec        bool
	Fingerprint uint64
	EntryBCI    int
	Backend     string
	Summaries   bool
}

// NoOSR is the EntryBCI value of a regular (method-entry) compilation.
// BCI 0 cannot be used as the sentinel: a loop header at pc 0 is a legal
// OSR entry.
const NoOSR = -1

// IsOSR reports whether the key identifies an on-stack-replacement compile.
func (k Key) IsOSR() bool { return k.EntryBCI >= 0 }

// Artifact is one compilation product: at minimum the scheduled graph it
// was built from (for install-boundary verification and tools), typically a
// backend-lowered executable wrapping it. *ir.Graph itself satisfies
// Artifact, so graph-level consumers need no wrapper type.
type Artifact interface {
	Graph() *ir.Graph
}

// DefaultCacheEntries is the in-memory artifact bound applied by NewCache.
// A long-lived multi-tenant server churns through fingerprints (every
// profile change is a fresh key), so the in-memory tier must be bounded;
// evicted artifacts are not lost when a disk Store backs the cache — they
// reload as disk hits.
const DefaultCacheEntries = 4096

type cacheEntry struct {
	a    Artifact
	used atomic.Int64 // logical clock tick of last access
}

// Cache is a concurrency-safe, bounded compiled-code cache. Artifacts are
// installed read-only (execution state lives in per-invocation frames), so
// one cached artifact may be shared by any number of VMs running the same
// program — the usual deduplicated-artifact-store shape. Caching the
// lowered artifact rather than the bare graph means warm hits and
// recompiles skip backend lowering entirely. A nil *Cache is valid and
// always misses.
//
// Lookups take only a read lock and touch counters atomically, so N
// tenants hammering one shared cache do not serialize on the hot path.
// When the bound is exceeded, the least-recently-used entry is evicted
// (approximate LRU: last-use ticks come from a global logical clock and
// the minimum is found by scan — eviction is the rare path, lookups are
// the hot one).
type Cache struct {
	mu        sync.RWMutex
	entries   map[Key]*cacheEntry
	max       int
	clock     atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewCache creates an empty code cache bounded at DefaultCacheEntries.
func NewCache() *Cache { return NewCacheSize(DefaultCacheEntries) }

// NewCacheSize creates an empty code cache holding at most max artifacts
// in memory. max <= 0 means unbounded.
func NewCacheSize(max int) *Cache {
	return &Cache{entries: make(map[Key]*cacheEntry), max: max}
}

// Get returns the cached artifact for k, counting a hit or miss.
func (c *Cache) Get(k Key) (Artifact, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.RLock()
	e := c.entries[k]
	c.mu.RUnlock()
	if e == nil {
		c.misses.Add(1)
		return nil, false
	}
	e.used.Store(c.clock.Add(1))
	c.hits.Add(1)
	return e.a, true
}

// Put stores the artifact for k, evicting the least-recently-used entry if
// the cache is full. First writer wins: concurrent compiles of the same key
// keep the already-published artifact so every consumer observes one
// canonical artifact.
func (c *Cache) Put(k Key, a Artifact) Artifact {
	if c == nil {
		return a
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[k]; ok {
		prev.used.Store(c.clock.Add(1))
		return prev.a
	}
	if c.max > 0 && len(c.entries) >= c.max {
		c.evictLocked()
	}
	e := &cacheEntry{a: a}
	e.used.Store(c.clock.Add(1))
	c.entries[k] = e
	return a
}

// evictLocked removes the entry with the oldest last-use tick. Caller holds
// the write lock.
func (c *Cache) evictLocked() {
	var victim Key
	best := int64(0)
	first := true
	for k, e := range c.entries {
		u := e.used.Load()
		if first || u < best {
			victim, best, first = k, u, false
		}
	}
	if !first {
		delete(c.entries, victim)
		c.evictions.Add(1)
	}
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns the cumulative number of artifacts evicted by the
// size bound.
func (c *Cache) Evictions() int64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}
