package broker

import (
	"sync"

	"pea/internal/bc"
	"pea/internal/ir"
)

// Key identifies one compilation product. Two compiles with equal keys are
// guaranteed to produce interchangeable code:
//
//   - Method pins the bytecode (bc entities are immutable after link).
//   - Mode is the escape-analysis configuration ordinal (vm.EAMode).
//   - Spec records whether speculative branch pruning was applied. A
//     method invalidated by deoptimization recompiles under Spec=false,
//     which is a different key — the non-speculative artifact is cached
//     separately and replayed on later invalidations instead of re-running
//     the pipeline.
//   - Fingerprint condenses the profile information the pipeline consumes
//     (monomorphic call-site targets for devirtualization, branch-pruning
//     verdicts when speculating; see interp.Profile.Fingerprint). Profiles
//     that would drive the compiler to different decisions hash
//     differently, so stale code is never replayed.
//   - EntryBCI distinguishes on-stack-replacement compilations: NoOSR for
//     a regular method compile, or the loop-header bytecode index of the
//     alternate OSR entry. OSR artifacts for different headers of the same
//     method coexist in the cache alongside the standard compile.
//   - Backend names the execution backend the artifact was lowered for
//     ("oracle", "closure"; empty when the caller caches plain graphs).
//     Artifacts lowered by one backend are never replayed into a VM
//     running another.
type Key struct {
	Method      *bc.Method
	Mode        int
	Spec        bool
	Fingerprint uint64
	EntryBCI    int
	Backend     string
}

// NoOSR is the EntryBCI value of a regular (method-entry) compilation.
// BCI 0 cannot be used as the sentinel: a loop header at pc 0 is a legal
// OSR entry.
const NoOSR = -1

// IsOSR reports whether the key identifies an on-stack-replacement compile.
func (k Key) IsOSR() bool { return k.EntryBCI >= 0 }

// Artifact is one compilation product: at minimum the scheduled graph it
// was built from (for install-boundary verification and tools), typically a
// backend-lowered executable wrapping it. *ir.Graph itself satisfies
// Artifact, so graph-level consumers need no wrapper type.
type Artifact interface {
	Graph() *ir.Graph
}

// Cache is a concurrency-safe compiled-code cache. Artifacts are installed
// read-only (execution state lives in per-invocation frames), so one cached
// artifact may be shared by any number of VMs running the same program —
// the usual deduplicated-artifact-store shape. Caching the lowered artifact
// rather than the bare graph means warm hits and recompiles skip backend
// lowering entirely. A nil *Cache is valid and always misses.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]Artifact
	hits    int64
	misses  int64
}

// NewCache creates an empty code cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]Artifact)}
}

// Get returns the cached artifact for k, counting a hit or miss.
func (c *Cache) Get(k Key) (Artifact, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return a, ok
}

// Put stores the artifact for k. First writer wins: concurrent compiles of
// the same key keep the already-published artifact so every consumer
// observes one canonical artifact.
func (c *Cache) Put(k Key, a Artifact) Artifact {
	if c == nil {
		return a
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[k]; ok {
		return prev
	}
	c.entries[k] = a
	return a
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
