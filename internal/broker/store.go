package broker

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"pea/internal/bc"
	"pea/internal/check"
	"pea/internal/ir"
	"pea/internal/summary"
)

// StoreVersion is the on-disk envelope format version. Bump it whenever
// the envelope or the ir JSON payload changes incompatibly; files written
// under any other version are treated as misses, never decoded.
const StoreVersion = 1

// envelope is the on-disk artifact file: the format version, the full
// content-addressed key the artifact was compiled under, and the
// ir.EncodeJSON payload. The key is stored in full (not just its hash) so
// a filename collision between two different keys is detected by
// comparison instead of silently replaying the wrong artifact.
type envelope struct {
	Version int             `json:"version"`
	Key     Key             `json:"key"`
	Graph   json.RawMessage `json:"graph"`
}

// StoreStats counts store traffic with atomics (the store is shared by
// broker workers and, through the directory, by other processes).
type StoreStats struct {
	Hits        int64 // artifacts loaded, verified, and returned
	Misses      int64 // no file for the key
	Rejected    int64 // file present but refused (corrupt, stale version, key mismatch, failed check)
	Writes      int64 // artifacts persisted
	WriteErrors int64 // failed persist attempts (artifact stays cached in memory only)
	// Expelled counts files deleted by the MaxBytes size bound
	// (oldest-modification-time first).
	Expelled int64
	// SummaryHits/Misses/Writes count inter-procedural summary-set traffic
	// (one file per program fingerprint, alongside the code artifacts).
	// Rejected summary files — corrupt, stale version, or failing
	// summary.DecodeJSON's validation — count under Rejected above.
	SummaryHits   int64
	SummaryMisses int64
	SummaryWrites int64
}

// Store is a disk-backed, content-addressed artifact store behind the
// in-memory code cache. Each artifact is one JSON envelope file named by
// the hash of its key, written atomically (temp file + rename on the same
// filesystem), so any number of processes can share one store directory:
// readers never observe a partial file, and concurrent writers of the same
// key race benignly (last rename wins; both files hold equivalent content
// because keys are content-addressed).
//
// Everything read back is treated as untrusted input — the trust-boundary
// stance the GraalVM IR formal-semantics work argues for: the envelope
// must parse, carry the current version, and echo the exact key; the graph
// must decode against the local program (every class/field/method name
// resolving) and pass the install-boundary check pass at Basic or the
// configured level, whichever is stricter. Any failure is a cache miss,
// never an error the compile path has to handle and never a crash.
//
// A nil *Store is valid and always misses.
type Store struct {
	dir string
	// maxBytes, when positive, bounds the total size of .json files in the
	// store; writes that push the directory over the bound expel the
	// oldest-modified files until it fits again (the persisted-cache
	// equivalent of the memory cache's LRU — mtime approximates recency
	// because loads do not touch files). evictMu serializes the enforcement
	// scan; concurrent expellers would redundantly stat and double-count.
	maxBytes atomic.Int64
	evictMu  sync.Mutex
	stats    struct {
		hits          atomic.Int64
		misses        atomic.Int64
		rejected      atomic.Int64
		writes        atomic.Int64
		writeErrors   atomic.Int64
		expelled      atomic.Int64
		summaryHits   atomic.Int64
		summaryMisses atomic.Int64
		summaryWrites atomic.Int64
	}
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("broker: opening artifact store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// path returns the artifact filename for k: a 64-bit FNV-1a hash over every
// key field. Collisions are harmless — Load compares the envelope's full
// key — they just alias two artifacts onto one file slot.
func (s *Store) path(k Key) string {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], k.MethodFP)
	h.Write(b[:])
	h.Write([]byte(k.Name))
	binary.LittleEndian.PutUint64(b[:], uint64(int64(k.Mode)))
	h.Write(b[:])
	if k.Spec {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	binary.LittleEndian.PutUint64(b[:], k.Fingerprint)
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(int64(k.EntryBCI)))
	h.Write(b[:])
	h.Write([]byte(k.Backend))
	if k.Summaries {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	return filepath.Join(s.dir, fmt.Sprintf("%016x.json", h.Sum64()))
}

// Put persists the scheduled graph compiled under k. The write is atomic
// (temp + rename); a failure leaves no partial file behind and is reported
// to the caller, who typically just counts it — the artifact is still in
// the in-memory cache, the store is an optimization, not a durability
// contract.
func (s *Store) Put(k Key, g *ir.Graph) error {
	if s == nil {
		return nil
	}
	err := s.put(k, g)
	if err != nil {
		s.stats.writeErrors.Add(1)
		return err
	}
	s.stats.writes.Add(1)
	return nil
}

func (s *Store) put(k Key, g *ir.Graph) error {
	payload, err := ir.EncodeJSON(g)
	if err != nil {
		return fmt.Errorf("broker: encoding artifact %s: %w", k.Name, err)
	}
	data, err := json.Marshal(&envelope{Version: StoreVersion, Key: k, Graph: payload})
	if err != nil {
		return fmt.Errorf("broker: marshaling envelope %s: %w", k.Name, err)
	}
	if err := s.atomicWrite(s.path(k), data); err != nil {
		return fmt.Errorf("broker: persisting %s: %w", k.Name, err)
	}
	s.enforceMaxBytes()
	return nil
}

// atomicWrite writes data to final via a temp file and a same-filesystem
// rename, so concurrent readers never observe a partial file.
func (s *Store) atomicWrite(final string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// SetMaxBytes bounds the total size of the store's .json files (code
// artifacts and summary sets alike). When a write pushes the directory over
// the bound, the oldest-modified files are expelled until it fits — the
// disk tier's LRU, with modification time approximating recency. n <= 0
// (the default) leaves the store unbounded. Safe to call at any time; the
// bound applies from the next write.
func (s *Store) SetMaxBytes(n int64) {
	if s == nil {
		return
	}
	s.maxBytes.Store(n)
	s.enforceMaxBytes()
}

// enforceMaxBytes expels oldest-modified .json files until the store fits
// its byte bound. Failures are ignored: eviction is best-effort hygiene,
// and a file another process already removed simply stops counting.
func (s *Store) enforceMaxBytes() {
	max := s.maxBytes.Load()
	if max <= 0 {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type file struct {
		name  string
		size  int64
		mtime int64
	}
	var files []file
	var total int64
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, file{e.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	if total <= max {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mtime != files[j].mtime {
			return files[i].mtime < files[j].mtime
		}
		return files[i].name < files[j].name // deterministic tie-break
	})
	for _, f := range files {
		if total <= max {
			break
		}
		if os.Remove(filepath.Join(s.dir, f.name)) == nil {
			total -= f.size
			s.stats.expelled.Add(1)
		}
	}
}

// sumPath is the summary-set filename for a program fingerprint. One file
// serves the whole program: summaries are whole-program analysis (CHA,
// bottom-up SCC fixpoint), so per-method files would be incoherent.
func (s *Store) sumPath(fp uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("sum-%016x.json", fp))
}

// PutSummaries persists the program's summary set. The payload is
// summary.EncodeJSON's self-validating form (format version + program
// fingerprint + per-method fingerprints), so no extra envelope is needed.
func (s *Store) PutSummaries(p *bc.Program, set *summary.Set) error {
	if s == nil || set == nil {
		return nil
	}
	data, err := set.EncodeJSON()
	if err != nil {
		s.stats.writeErrors.Add(1)
		return fmt.Errorf("broker: encoding summaries: %w", err)
	}
	if err := s.atomicWrite(s.sumPath(p.Fingerprint()), data); err != nil {
		s.stats.writeErrors.Add(1)
		return fmt.Errorf("broker: persisting summaries: %w", err)
	}
	s.stats.summaryWrites.Add(1)
	s.enforceMaxBytes()
	return nil
}

// LoadSummaries returns the persisted summary set for p, or (nil, false).
// Everything read back is untrusted: summary.DecodeJSON rejects version or
// fingerprint mismatches, arity mismatches, and out-of-range lattice
// values, so a stale or tampered file is a miss, never a wrong analysis.
func (s *Store) LoadSummaries(p *bc.Program) (*summary.Set, bool) {
	if s == nil || p == nil {
		return nil, false
	}
	data, err := os.ReadFile(s.sumPath(p.Fingerprint()))
	if err != nil {
		s.stats.summaryMisses.Add(1)
		return nil, false
	}
	set, err := summary.DecodeJSON(data, p)
	if err != nil {
		s.stats.rejected.Add(1)
		s.stats.summaryMisses.Add(1)
		return nil, false
	}
	s.stats.summaryHits.Add(1)
	return set, true
}

// Load returns the verified graph stored under k, decoded against r's
// program, or (nil, false) — there is no error: a missing, corrupt, stale,
// or unverifiable file is indistinguishable from a cold cache by design.
// lvl is the broker's configured check level; loads are always verified at
// least at check.Basic regardless (and the PEA_CHECK floor applies on top).
func (s *Store) Load(k Key, r ir.Resolver, lvl check.Level) (*ir.Graph, bool) {
	if s == nil || r == nil {
		return nil, false
	}
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		s.stats.misses.Add(1)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		s.stats.rejected.Add(1)
		return nil, false
	}
	if env.Version != StoreVersion || env.Key != k {
		s.stats.rejected.Add(1)
		return nil, false
	}
	g, err := ir.DecodeJSON(env.Graph, r)
	if err != nil {
		s.stats.rejected.Add(1)
		return nil, false
	}
	if err := check.Graph(g, check.Effective(check.Max(lvl, check.Basic))); err != nil {
		s.stats.rejected.Add(1)
		return nil, false
	}
	s.stats.hits.Add(1)
	return g, true
}

// Len returns the number of artifact files currently in the store.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	return StoreStats{
		Hits:          s.stats.hits.Load(),
		Misses:        s.stats.misses.Load(),
		Rejected:      s.stats.rejected.Load(),
		Writes:        s.stats.writes.Load(),
		WriteErrors:   s.stats.writeErrors.Load(),
		Expelled:      s.stats.expelled.Load(),
		SummaryHits:   s.stats.summaryHits.Load(),
		SummaryMisses: s.stats.summaryMisses.Load(),
		SummaryWrites: s.stats.summaryWrites.Load(),
	}
}
