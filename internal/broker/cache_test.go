package broker

import (
	"fmt"
	"sync"
	"testing"

	"pea/internal/ir"
)

type stubArtifact struct{ g *ir.Graph }

func (s stubArtifact) Graph() *ir.Graph { return s.g }

func nk(i int) Key { return Key{MethodFP: uint64(i) + 1, Name: fmt.Sprintf("C.m%d", i)} }

func TestCacheBoundAndEvictionOrder(t *testing.T) {
	c := NewCacheSize(2)
	a := stubArtifact{}
	c.Put(nk(0), a)
	c.Put(nk(1), a)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Touch k0 so k1 becomes the least recently used.
	if _, ok := c.Get(nk(0)); !ok {
		t.Fatal("k0 missing")
	}
	c.Put(nk(2), a)
	if c.Len() != 2 {
		t.Fatalf("len after eviction = %d, want 2", c.Len())
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	if _, ok := c.Get(nk(1)); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	for _, i := range []int{0, 2} {
		if _, ok := c.Get(nk(i)); !ok {
			t.Fatalf("recently used k%d was evicted", i)
		}
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCacheSize(2)
	first := stubArtifact{g: &ir.Graph{}}
	second := stubArtifact{g: &ir.Graph{}}
	if got := c.Put(nk(0), first); got != Artifact(first) {
		t.Fatal("first put must return its own artifact")
	}
	c.Put(nk(1), stubArtifact{})
	// First writer wins; the re-put refreshes recency but keeps the artifact.
	if got := c.Put(nk(0), second); got != Artifact(first) {
		t.Fatal("re-put replaced an installed artifact")
	}
	c.Put(nk(2), stubArtifact{}) // evicts k1: k0 was refreshed by the re-put
	if _, ok := c.Get(nk(0)); !ok {
		t.Fatal("refreshed entry was evicted")
	}
	if _, ok := c.Get(nk(1)); ok {
		t.Fatal("stale entry survived")
	}
}

func TestCacheUnboundedWhenMaxNonPositive(t *testing.T) {
	c := NewCacheSize(0)
	for i := 0; i < 3*DefaultCacheEntries; i++ {
		c.Put(nk(i), stubArtifact{})
	}
	if c.Len() != 3*DefaultCacheEntries {
		t.Fatalf("len = %d, want %d", c.Len(), 3*DefaultCacheEntries)
	}
	if c.Evictions() != 0 {
		t.Fatalf("unbounded cache evicted %d entries", c.Evictions())
	}
}

// Counters must stay exact under concurrent mixed traffic; run under -race.
func TestCacheParallelCounters(t *testing.T) {
	const (
		workers = 8
		keys    = 64
		ops     = 500
	)
	c := NewCacheSize(keys) // large enough that nothing evicts
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := nk((i + w) % keys)
				if _, ok := c.Get(k); !ok {
					c.Put(k, stubArtifact{})
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != workers*ops {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d", hits, misses, hits+misses, workers*ops)
	}
	if c.Len() > keys {
		t.Fatalf("len = %d exceeds bound %d", c.Len(), keys)
	}
	if c.Evictions() != 0 {
		t.Fatalf("unexpected evictions: %d", c.Evictions())
	}
}

// BenchmarkCacheParallel measures the read-mostly hot path: concurrent Gets
// with an occasional Put, the shape the broker sees when many tenant VMs
// share one cache.
func BenchmarkCacheParallel(b *testing.B) {
	c := NewCache()
	const keys = 256
	for i := 0; i < keys; i++ {
		c.Put(nk(i), stubArtifact{})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if i%64 == 0 {
				c.Put(nk(i%keys), stubArtifact{})
			} else {
				c.Get(nk(i % keys))
			}
		}
	})
}
