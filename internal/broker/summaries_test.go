package broker

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"pea/internal/bc"
	"pea/internal/summary"
)

// summaryTestProgram assembles a program whose summaries are non-trivial:
// observe(b) reads a field (ArgEscape), ignore(b) never touches b
// (NoEscape).
func summaryTestProgram(t *testing.T) *bc.Program {
	t.Helper()
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	vField := box.Field("v", bc.KindInt)
	c := a.Class("C", "")
	obsM := c.Method("observe", []bc.Kind{bc.KindRef}, bc.KindInt, true)
	obsM.Load(0).GetField(vField).ReturnValue()
	ign := c.Method("ignore", []bc.Kind{bc.KindRef}, bc.KindInt, true)
	ign.Const(1).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStoreSummariesRoundTrip(t *testing.T) {
	p := summaryTestProgram(t)
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set := summary.Compute(p, summary.Options{})
	if err := s.PutSummaries(p, set); err != nil {
		t.Fatal(err)
	}
	back, ok := s.LoadSummaries(p)
	if !ok {
		t.Fatal("miss after PutSummaries")
	}
	if back.Table() != set.Table() {
		t.Fatalf("summary store round-trip changed the set:\n%s\nvs\n%s",
			back.Table(), set.Table())
	}
	st := s.Stats()
	if st.SummaryWrites != 1 || st.SummaryHits != 1 || st.SummaryMisses != 0 {
		t.Fatalf("summary stats = %+v", st)
	}
}

func TestStoreSummariesRejectsCorruptFile(t *testing.T) {
	p := summaryTestProgram(t)
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	set := summary.Compute(p, summary.Options{})
	if err := s.PutSummaries(p, set); err != nil {
		t.Fatal(err)
	}
	path := s.sumPath(p.Fingerprint())
	if err := os.WriteFile(path, []byte(`{"version":999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadSummaries(p); ok {
		t.Fatal("corrupt summary file was not rejected")
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
}

// TestBrokerSummariesTiers drives the full resolution ladder: a cold broker
// computes once; a second request on the same broker is a memory hit; a
// fresh broker on the same store loads from disk without recomputing.
func TestBrokerSummariesTiers(t *testing.T) {
	p := summaryTestProgram(t)
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	computes := 0
	compute := func() *summary.Set {
		computes++
		return summary.Compute(p, summary.Options{})
	}

	b1 := New(Options{Store: store})
	defer b1.Close()
	s1 := b1.Summaries(p, compute)
	if s1 == nil || computes != 1 {
		t.Fatalf("cold resolve: set=%v computes=%d, want computed once", s1 != nil, computes)
	}
	if s2 := b1.Summaries(p, compute); s2 != s1 || computes != 1 {
		t.Fatalf("memory tier: recomputed (computes=%d) or returned a different set", computes)
	}
	if hits, _ := b1.SummaryCache().Stats(); hits == 0 {
		t.Fatal("memory tier recorded no hit")
	}

	// Warm restart: a new broker over the same store directory must load
	// the persisted set instead of re-running the analysis.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b2 := New(Options{Store: store2})
	defer b2.Close()
	s3 := b2.Summaries(p, compute)
	if computes != 1 {
		t.Fatalf("warm restart recomputed summaries (computes=%d)", computes)
	}
	if s3 == nil || s3.Table() != s1.Table() {
		t.Fatal("warm restart loaded a different summary set")
	}
	if st := store2.Stats(); st.SummaryHits != 1 {
		t.Fatalf("store2 SummaryHits = %d, want 1", st.SummaryHits)
	}
}

func TestStoreMaxBytesExpelsOldestFirst(t *testing.T) {
	p, ms := testProgram(t, 4)
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for _, m := range ms {
		k := contentKey(p, m)
		if err := s.Put(k, mustBuild(m)); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(s.path(k))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
		// Distinct mtimes so eviction order is the write order even on
		// coarse-mtime filesystems.
		old := time.Now().Add(-time.Duration(len(ms)-len(sizes)) * time.Hour)
		if err := os.Chtimes(s.path(k), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Bound to exactly the two newest artifacts: the two oldest must go.
	s.SetMaxBytes(sizes[2] + sizes[3])
	if got := s.Len(); got != 2 {
		t.Fatalf("store holds %d files after eviction, want 2", got)
	}
	if st := s.Stats(); st.Expelled != 2 {
		t.Fatalf("Expelled = %d, want 2", st.Expelled)
	}
	// The survivors are the newest two.
	for i, m := range ms {
		_, err := os.Stat(s.path(contentKey(p, m)))
		if i < 2 && err == nil {
			t.Fatalf("old artifact %d survived eviction", i)
		}
		if i >= 2 && err != nil {
			t.Fatalf("new artifact %d was expelled: %v", i, err)
		}
	}
	// A write that fits keeps fitting: re-put an old artifact and check
	// the bound still holds.
	if err := s.Put(contentKey(p, ms[0]), mustBuild(ms[0])); err != nil {
		t.Fatal(err)
	}
	var total int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if info, err := e.Info(); err == nil && filepath.Ext(e.Name()) == ".json" {
			total += info.Size()
		}
	}
	if total > sizes[2]+sizes[3] {
		t.Fatalf("store size %d exceeds bound %d after write", total, sizes[2]+sizes[3])
	}
}
