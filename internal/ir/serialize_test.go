package ir_test

import (
	"encoding/json"
	"strings"
	"testing"

	"pea/internal/ir"
	"pea/internal/mj"
	"pea/internal/vm"
)

const rtSrc = `
class Main {
	static void main() {
		Point p = new Point(1, 2);
		print(p.getX());
		p.move(3, 4);
		print(p.getX() + p.getY());
		Point q = new Point(5, 6);
		sink = q;
		print(q.getX());
		int[] a = new int[4];
		a[0] = 7;
		print(a[0] + a.length);
		int s = 0;
		int i = 0;
		while (i < 10) {
			s = s + i;
			i = i + 1;
		}
		print(s);
	}
	static Point sink;
}
class Point {
	int x;
	int y;
	Point(int x, int y) { this.x = x; this.y = y; }
	int getX() { return this.x; }
	int getY() { return this.y; }
	void move(int dx, int dy) { this.x = this.x + dx; this.y = this.y + dy; }
}
`

// compileAll runs the full pipeline (with PEA) over every method of a fresh
// link of src, returning the program and its scheduled graphs. PEA leaves
// FrameStates with VirtualObjectStates behind wherever an allocation stays
// virtual across a side effect, which is exactly the hard part of the
// round-trip.
func compileAll(t *testing.T, src string, mode vm.EAMode) (*vm.VM, []*ir.Graph) {
	t.Helper()
	prog, err := mj.Compile(src, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(prog, vm.Options{EA: mode})
	var gs []*ir.Graph
	for _, m := range prog.Methods {
		g, err := machine.Compile(m)
		if err != nil {
			t.Fatalf("compiling %s: %v", m.QualifiedName(), err)
		}
		gs = append(gs, g)
	}
	return machine, gs
}

// hasVirtualState reports whether any frame state in g carries a
// VirtualObjectState — the test corpus must exercise that path or the
// round-trip proof is hollow.
func hasVirtualState(g *ir.Graph) bool {
	found := false
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		for fs := n.FrameState; fs != nil; fs = fs.Outer {
			if len(fs.VirtualObjects) > 0 {
				found = true
			}
		}
	})
	return found
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, mode := range []vm.EAMode{vm.EAOff, vm.EAFlowInsensitive, vm.EAPartial} {
		machine, gs := compileAll(t, rtSrc, mode)
		anyVirtual := false
		for _, g := range gs {
			anyVirtual = anyVirtual || hasVirtualState(g)
			data, err := ir.EncodeJSON(g)
			if err != nil {
				t.Fatalf("%v/%s: encode: %v", mode, g.Method.QualifiedName(), err)
			}
			back, err := ir.DecodeJSON(data, machine.Prog)
			if err != nil {
				t.Fatalf("%v/%s: decode: %v", mode, g.Method.QualifiedName(), err)
			}
			if got, want := ir.Dump(back), ir.Dump(g); got != want {
				t.Fatalf("%v/%s: round-trip changed the graph:\n--- original\n%s\n--- decoded\n%s",
					mode, g.Method.QualifiedName(), want, got)
			}
			if back.Method != g.Method {
				t.Fatalf("%v/%s: decoded graph bound to wrong method", mode, g.Method.QualifiedName())
			}
			if back.CodeCycles != g.CodeCycles {
				t.Fatalf("%v/%s: CodeCycles %d != %d", mode, g.Method.QualifiedName(),
					back.CodeCycles, g.CodeCycles)
			}
		}
		if mode == vm.EAPartial && !anyVirtual {
			t.Fatal("PEA corpus produced no VirtualObjectStates; round-trip test lost its teeth")
		}
	}
}

// Decoding against a different link of the same source must rebind every
// entity to the new program's instances — that is what makes persisted
// artifacts shareable across processes.
func TestDecodeRebindsAcrossLinks(t *testing.T) {
	_, gs := compileAll(t, rtSrc, vm.EAPartial)
	prog2, err := mj.Compile(rtSrc, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs {
		data, err := ir.EncodeJSON(g)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ir.DecodeJSON(data, prog2)
		if err != nil {
			t.Fatalf("%s: decode against relink: %v", g.Method.QualifiedName(), err)
		}
		if got, want := ir.Dump(back), ir.Dump(g); got != want {
			t.Fatalf("%s: cross-link round-trip changed the graph:\n%s\nvs\n%s",
				g.Method.QualifiedName(), got, want)
		}
		if back.Method == g.Method {
			t.Fatalf("%s: decoded graph still bound to the original program instance",
				g.Method.QualifiedName())
		}
		if back.Method.Class == g.Method.Class {
			t.Fatalf("%s: decoded class not rebound", g.Method.QualifiedName())
		}
		back.ForEachNode(func(_ *ir.Block, n *ir.Node) {
			if n.Method != nil && n.Method.Class.Name != "" {
				if prog2.ClassByName(n.Method.Class.Name) != n.Method.Class {
					t.Fatalf("node method %s bound outside the target program", n.Method.QualifiedName())
				}
			}
		})
	}
}

// New nodes allocated on a decoded graph must not collide with decoded IDs.
func TestDecodeRestoresIDCounters(t *testing.T) {
	machine, gs := compileAll(t, rtSrc, vm.EAPartial)
	for _, g := range gs {
		data, err := ir.EncodeJSON(g)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ir.DecodeJSON(data, machine.Prog)
		if err != nil {
			t.Fatal(err)
		}
		ids := make(map[int]bool)
		back.ForEachNode(func(_ *ir.Block, n *ir.Node) { ids[n.ID] = true })
		fresh := back.NewNode(ir.OpConst, 0)
		if ids[fresh.ID] {
			t.Fatalf("%s: fresh node reused decoded id v%d", g.Method.QualifiedName(), fresh.ID)
		}
		nb := back.NewBlock()
		for _, b := range back.Blocks[:len(back.Blocks)-1] {
			if b.ID == nb.ID {
				t.Fatalf("%s: fresh block reused decoded id b%d", g.Method.QualifiedName(), nb.ID)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	machine, gs := compileAll(t, rtSrc, vm.EAPartial)
	g := gs[0]
	data, err := ir.EncodeJSON(g)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"not-json", func(b []byte) []byte { return []byte("{{nope") }},
		{"unknown-class", func(b []byte) []byte {
			return []byte(strings.ReplaceAll(string(b), `"Point`, `"Pointless`))
		}},
		{"unknown-op", func(b []byte) []byte {
			return []byte(strings.ReplaceAll(string(b), `"op":"Const"`, `"op":"Cromulent"`))
		}},
		{"dangling-node-ref", func(b []byte) []byte {
			var m map[string]any
			if err := json.Unmarshal(b, &m); err != nil {
				t.Fatal(err)
			}
			blocks := m["blocks"].([]any)
			blocks[0].(map[string]any)["term"] = float64(999999)
			out, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ir.DecodeJSON(tc.mutate(append([]byte(nil), data...)), machine.Prog); err == nil {
				t.Fatalf("%s: corrupt payload decoded without error", tc.name)
			}
		})
	}
}
