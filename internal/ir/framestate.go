package ir

import (
	"fmt"
	"strings"

	"pea/internal/bc"
)

// FrameState describes the bytecode-level machine state at a point in the
// method: the method, the bytecode index to resume at, the local variable
// values, and the expression stack contents. After inlining, Outer chains
// to the caller's state at the call site (paper §2, §5.5).
//
// Deoptimization builds interpreter frames from this description. Entries
// that reference OpVirtualObject nodes denote scalar-replaced allocations;
// their contents at this point are recorded in VirtualObjects and are
// materialized by the deopt runtime (paper Figure 8).
type FrameState struct {
	Method *bc.Method
	// BCI is the bytecode index at which the interpreter resumes. The
	// instruction at BCI is re-executed (states are captured before any
	// effect of the instruction at BCI has happened). For Outer states
	// the BCI is the invoke instruction; the deopt runtime completes the
	// call by pushing the inner frame's return value and advancing past
	// the invoke.
	BCI    int
	Locals []*Node // one per local slot; nil = undefined/dead
	Stack  []*Node // expression stack, bottom first
	Outer  *FrameState

	// VirtualObjects describes the field contents of every virtual
	// object referenced (transitively) by this state. Filled in by
	// Partial Escape Analysis.
	VirtualObjects []*VirtualObjectState
}

// VirtualObjectState records the state of one scalar-replaced allocation at
// a FrameState: its identity node, its field (or array element) values, and
// the monitor depth to re-establish on materialization.
type VirtualObjectState struct {
	Object    *Node   // the OpVirtualObject node
	Values    []*Node // field values; may reference other OpVirtualObject nodes
	LockDepth int
}

// Copy returns a deep copy of the state chain (sharing the referenced value
// nodes, copying the slices and descriptors).
func (fs *FrameState) Copy() *FrameState {
	if fs == nil {
		return nil
	}
	c := &FrameState{
		Method: fs.Method,
		BCI:    fs.BCI,
		Locals: append([]*Node(nil), fs.Locals...),
		Stack:  append([]*Node(nil), fs.Stack...),
		Outer:  fs.Outer.Copy(),
	}
	for _, vo := range fs.VirtualObjects {
		c.VirtualObjects = append(c.VirtualObjects, &VirtualObjectState{
			Object:    vo.Object,
			Values:    append([]*Node(nil), vo.Values...),
			LockDepth: vo.LockDepth,
		})
	}
	return c
}

// replaceUsages substitutes old with new throughout the state chain.
func (fs *FrameState) replaceUsages(old, new *Node, seen map[*FrameState]bool) {
	if fs == nil || seen[fs] {
		return
	}
	seen[fs] = true
	replaceIn(fs.Locals, old, new)
	replaceIn(fs.Stack, old, new)
	for _, vo := range fs.VirtualObjects {
		replaceIn(vo.Values, old, new)
	}
	fs.Outer.replaceUsages(old, new, seen)
}

// ForEachValue calls f for every value node referenced by the state chain
// (locals, stack, and virtual object field values).
func (fs *FrameState) ForEachValue(f func(n *Node)) {
	for s := fs; s != nil; s = s.Outer {
		for _, n := range s.Locals {
			if n != nil {
				f(n)
			}
		}
		for _, n := range s.Stack {
			if n != nil {
				f(n)
			}
		}
		for _, vo := range s.VirtualObjects {
			f(vo.Object)
			for _, n := range vo.Values {
				if n != nil {
					f(n)
				}
			}
		}
	}
}

// Depth returns the number of chained frames.
func (fs *FrameState) Depth() int {
	d := 0
	for s := fs; s != nil; s = s.Outer {
		d++
	}
	return d
}

// String renders the state chain, innermost first, e.g.
// "@C.m:3 locals=[v1 v2] stack=[v3]".
func (fs *FrameState) String() string {
	if fs == nil {
		return "<nil state>"
	}
	var b strings.Builder
	first := true
	for s := fs; s != nil; s = s.Outer {
		if !first {
			b.WriteString(" <- ")
		}
		first = false
		fmt.Fprintf(&b, "@%s:%d locals=%s stack=%s",
			s.Method.QualifiedName(), s.BCI, fmtNodeList(s.Locals), fmtNodeList(s.Stack))
		for _, vo := range s.VirtualObjects {
			fmt.Fprintf(&b, " virt{v%d=%s", vo.Object.ID, fmtNodeList(vo.Values))
			if vo.LockDepth > 0 {
				fmt.Fprintf(&b, " locks=%d", vo.LockDepth)
			}
			b.WriteString("}")
		}
	}
	return b.String()
}

func fmtNodeList(ns []*Node) string {
	var b strings.Builder
	b.WriteString("[")
	for i, n := range ns {
		if i > 0 {
			b.WriteString(" ")
		}
		if n == nil {
			b.WriteString("_")
		} else {
			fmt.Fprintf(&b, "v%d", n.ID)
		}
	}
	b.WriteString("]")
	return b.String()
}
