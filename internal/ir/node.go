// Package ir defines the compiler's SSA intermediate representation,
// modeled on Graal IR as used by the CGO'14 Partial Escape Analysis paper:
// basic blocks of ordered *fixed* (effectful) nodes ending in a terminator,
// value nodes (including Phis) in SSA form, and FrameState nodes that map
// every deoptimization-relevant point back to bytecode-level machine state
// (method, bci, locals, expression stack), chained across inlined methods.
//
// Graal's PEA runs over a schedule of the sea of nodes — cfg blocks visited
// in reverse postorder with data dependencies resolved — which is exactly
// the shape this IR keeps at all times. Pure value nodes are placed in the
// block where the graph builder created them and may be deduplicated across
// dominating blocks by GVN.
package ir

import (
	"fmt"

	"pea/internal/bc"
)

// Op is an IR node operation.
type Op uint8

// IR operations. Value ops produce a result; fixed ops are ordered in a
// block's node list; terminator ops end a block.
const (
	OpInvalid Op = iota

	// Value ops (pure, no observable effect).

	// OpParam is the i-th incoming argument (AuxInt = index, receiver
	// first for instance methods).
	OpParam
	// OpConst is the integer constant AuxInt.
	OpConst
	// OpConstNull is the null reference.
	OpConstNull
	// OpPhi merges one value per predecessor of its block.
	OpPhi
	// OpArith is a binary integer op; Aux2 (a bc.Op) selects the operator.
	// Division and remainder can trap and are fixed, not floating, but
	// share this op code.
	OpArith
	// OpNeg is integer negation.
	OpNeg
	// OpCmp compares two ints under Cond, yielding 0 or 1.
	OpCmp
	// OpRefEq compares two references for identity, yielding 0 or 1.
	OpRefEq
	// OpInstanceOf tests whether input 0 is a non-null instance of Class.
	OpInstanceOf
	// OpVirtualObject stands for a scalar-replaced allocation inside
	// FrameStates (AuxInt = object id). It never executes; the
	// deoptimization runtime materializes it from the VirtualObjectState
	// attached to the FrameState. Class/ElemKind+AuxArrayLen describe
	// the allocation.
	OpVirtualObject

	// Fixed ops (ordered effects within a block).

	// OpNew allocates an instance of Class.
	OpNew
	// OpNewArray allocates an array of ElemKind; input 0 is the length.
	OpNewArray
	// OpLoadField loads Field from input 0.
	OpLoadField
	// OpStoreField stores input 1 into Field of input 0.
	OpStoreField
	// OpLoadStatic loads the static Field.
	OpLoadStatic
	// OpStoreStatic stores input 0 into the static Field.
	OpStoreStatic
	// OpLoadIndexed loads element input 1 of array input 0 (ElemKind).
	OpLoadIndexed
	// OpStoreIndexed stores input 2 at element input 1 of array input 0.
	OpStoreIndexed
	// OpArrayLength reads the length of array input 0.
	OpArrayLength
	// OpMonitorEnter acquires the monitor of input 0.
	OpMonitorEnter
	// OpMonitorExit releases the monitor of input 0.
	OpMonitorExit
	// OpInvoke calls Method with the inputs as arguments (receiver
	// first); Aux2 holds the original bc invoke op for dispatch kind.
	OpInvoke
	// OpPrint emits input 0 to the program output.
	OpPrint
	// OpRand produces the next PRNG value (AuxInt = modulus, 0 = none).
	OpRand
	// OpMaterialize allocates an object/array and initializes all fields
	// from the inputs in one step (PEA's materialization; Graal's
	// CommitAllocation). Class describes object allocations; for arrays
	// Class is nil and ElemKind/AuxInt hold element kind and length.
	// AuxLock holds the lock depth to re-establish on the fresh object.
	OpMaterialize
	// OpDeopt transfers execution to the interpreter using FrameState.
	// Created by speculative branch pruning. Terminates its block.
	OpDeopt
	// OpExceptionObject yields the in-flight exception reference at the
	// entry of an exception-dispatch block: the thrown object, or null
	// for intrinsic traps. It is fixed (never deduplicated or removed)
	// and reads the engine's pending-exception register, which the
	// OpOnException edge into its block has just set.
	OpExceptionObject

	// Terminators.

	// OpIf branches on input 0 (an int; nonzero = true) to Succs[0]
	// (true) or Succs[1] (false).
	OpIf
	// OpGoto jumps to Succs[0].
	OpGoto
	// OpReturn returns input 0 (or nothing if no inputs).
	OpReturn
	// OpThrow raises the exception object input 0. With one successor the
	// throw is covered by a handler range and control transfers to the
	// dispatch block; with no successors the exception unwinds out of the
	// compiled method (the caller may still catch it).
	OpThrow
	// OpOnException guards the trapping node Inputs[0], which must be the
	// last node of the same block: Succs[0] is the normal continuation,
	// Succs[1] the exception-dispatch block entered (with the engine's
	// pending-exception register set) iff the guarded node traps. This is
	// the IR form of Graal's exception-projection edges.
	OpOnException
	// OpUnwind re-raises the pending exception out of the current
	// compiled method, preserving its origin identity. It terminates a
	// dispatch chain with no matching local handler.
	OpUnwind
)

var opNames = [...]string{
	OpInvalid:         "invalid",
	OpParam:           "Param",
	OpConst:           "Const",
	OpConstNull:       "ConstNull",
	OpPhi:             "Phi",
	OpArith:           "Arith",
	OpNeg:             "Neg",
	OpCmp:             "Cmp",
	OpRefEq:           "RefEq",
	OpInstanceOf:      "InstanceOf",
	OpVirtualObject:   "VirtualObject",
	OpNew:             "New",
	OpNewArray:        "NewArray",
	OpLoadField:       "LoadField",
	OpStoreField:      "StoreField",
	OpLoadStatic:      "LoadStatic",
	OpStoreStatic:     "StoreStatic",
	OpLoadIndexed:     "LoadIndexed",
	OpStoreIndexed:    "StoreIndexed",
	OpArrayLength:     "ArrayLength",
	OpMonitorEnter:    "MonitorEnter",
	OpMonitorExit:     "MonitorExit",
	OpInvoke:          "Invoke",
	OpPrint:           "Print",
	OpRand:            "Rand",
	OpMaterialize:     "Materialize",
	OpDeopt:           "Deopt",
	OpExceptionObject: "ExceptionObject",
	OpIf:              "If",
	OpGoto:            "Goto",
	OpReturn:          "Return",
	OpThrow:           "Throw",
	OpOnException:     "OnException",
	OpUnwind:          "Unwind",
}

// String returns the op name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsTerminator reports whether the op ends a block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpIf, OpGoto, OpReturn, OpThrow, OpDeopt, OpOnException, OpUnwind:
		return true
	}
	return false
}

// IsPure reports whether the op has no observable effect and may be
// deduplicated, reordered or removed when unused. Arith is pure except for
// div/rem, which is checked on the node (see Node.Pure).
func (o Op) IsPure() bool {
	switch o {
	case OpParam, OpConst, OpConstNull, OpPhi, OpArith, OpNeg, OpCmp,
		OpRefEq, OpInstanceOf, OpVirtualObject:
		return true
	}
	return false
}

// HasSideEffect reports whether the op mutates observable state (and hence
// cannot be removed even if its value is unused, and carries a FrameState).
func (o Op) HasSideEffect() bool {
	switch o {
	case OpStoreField, OpStoreStatic, OpStoreIndexed, OpMonitorEnter,
		OpMonitorExit, OpInvoke, OpPrint, OpRand:
		return true
	}
	return false
}

// DeoptAction tells the deoptimization runtime how to treat the compiled
// code containing an OpDeopt after the transfer to the interpreter.
type DeoptAction uint8

const (
	// DeoptActionNone transfers execution only: the compiled code stays
	// valid (the deopt models a rare-but-legal path, not a broken
	// assumption) and future compilations may keep speculating.
	DeoptActionNone DeoptAction = iota
	// DeoptActionInvalidateSpeculation marks a failed speculative
	// assumption: the containing code must be thrown away and the method
	// recompiled without speculation.
	DeoptActionInvalidateSpeculation
)

// String names the action.
func (a DeoptAction) String() string {
	switch a {
	case DeoptActionNone:
		return "none"
	case DeoptActionInvalidateSpeculation:
		return "invalidate-speculation"
	default:
		return fmt.Sprintf("DeoptAction(%d)", uint8(a))
	}
}

// Node is one IR node.
type Node struct {
	ID     int
	Op     Op
	Kind   bc.Kind // result kind; KindVoid for non-value nodes
	Inputs []*Node

	// Block is the block the node is placed in. Phis live in
	// Block.Phis, terminators in Block.Term, other nodes in Block.Nodes.
	Block *Block

	// AuxInt holds the constant for OpConst, the parameter index for
	// OpParam, the modulus for OpRand, the array length for
	// OpMaterialize arrays, and the virtual object id for
	// OpVirtualObject.
	AuxInt int64
	// AuxLen is the array length for OpVirtualObject arrays (the id
	// occupies AuxInt there).
	AuxLen int64
	// AuxLock is the monitor depth re-established by OpMaterialize (and
	// recorded on OpVirtualObject for deoptimization).
	AuxLock int
	// Aux2 is the original bytecode op for OpArith (the operator) and
	// OpInvoke (the dispatch kind).
	Aux2 bc.Op
	// Cond is the condition for OpCmp and OpRefEq (EQ/NE only for the
	// latter).
	Cond     bc.Cond
	Class    *bc.Class
	Field    *bc.Field
	Method   *bc.Method
	ElemKind bc.Kind

	// FrameState maps this point to bytecode-level state; present on
	// side-effecting fixed nodes and OpDeopt. For side effects it is the
	// state *before* the effect with BCI at the effecting instruction —
	// this VM only transfers to the interpreter at points where no
	// partial effect has occurred, so re-executing the instruction is
	// always sound.
	FrameState *FrameState

	// DeoptReason describes why an OpDeopt was inserted (diagnostics).
	DeoptReason string
	// Action tells the deoptimization runtime what to do with the
	// compiled code that contains this OpDeopt (see DeoptAction).
	Action DeoptAction

	// BCI is the bytecode index this node originates from (-1 if
	// synthetic).
	BCI int

	// Origin is the bytecode method BCI refers to, recorded on nodes that
	// can trap. The graph builder sets it to the method being translated,
	// and the inliner copies it verbatim when splicing callee bodies into
	// callers — so a trap in inlined code is reported against the callee,
	// exactly as the interpreter would report it. Engines fall back to
	// the graph's method when nil.
	Origin *bc.Method
}

// OriginMethod returns the method n's BCI belongs to: Origin when set (the
// innermost inlined method), fallback otherwise. Engines build trap
// identities from this so every backend attributes a fault to the same
// (method, bci).
func (n *Node) OriginMethod(fallback *bc.Method) *bc.Method {
	if n.Origin != nil {
		return n.Origin
	}
	return fallback
}

// Pure reports whether this node may be freely deduplicated/removed:
// the op is pure and, for OpArith, the operator cannot trap.
func (n *Node) Pure() bool {
	if !n.Op.IsPure() {
		return false
	}
	if n.Op == OpArith && (n.Aux2 == bc.OpDiv || n.Aux2 == bc.OpRem) {
		return false
	}
	return true
}

// IsConst reports whether the node is an integer constant.
func (n *Node) IsConst() bool { return n.Op == OpConst }

// IsNullConst reports whether the node is the null constant.
func (n *Node) IsNullConst() bool { return n.Op == OpConstNull }

// String renders the node compactly, e.g. "v7 = Arith add v3 v4".
func (n *Node) String() string {
	if n == nil {
		return "nil"
	}
	s := fmt.Sprintf("v%d = %s", n.ID, n.Op)
	switch n.Op {
	case OpConst, OpParam:
		s += fmt.Sprintf(" %d", n.AuxInt)
	case OpArith:
		s += " " + n.Aux2.String()
	case OpCmp, OpRefEq:
		s += " " + n.Cond.String()
	case OpNew, OpInstanceOf:
		s += " " + n.Class.Name
	case OpVirtualObject, OpMaterialize:
		if n.Class != nil {
			s += " " + n.Class.Name
		} else if n.Op == OpMaterialize {
			s += fmt.Sprintf(" %s[%d]", n.ElemKind, n.AuxInt)
		} else {
			s += fmt.Sprintf(" %s[%d]", n.ElemKind, n.AuxLen)
		}
		if n.Op == OpVirtualObject {
			s += fmt.Sprintf(" id=%d", n.AuxInt)
		}
		if n.AuxLock > 0 {
			s += fmt.Sprintf(" locks=%d", n.AuxLock)
		}
	case OpLoadField, OpStoreField, OpLoadStatic, OpStoreStatic:
		s += " " + n.Field.QualifiedName()
	case OpNewArray, OpLoadIndexed, OpStoreIndexed:
		s += " " + n.ElemKind.String()
	case OpInvoke:
		s += fmt.Sprintf(" %s %s", n.Aux2, n.Method.QualifiedName())
	case OpRand:
		if n.AuxInt > 0 {
			s += fmt.Sprintf(" %%%d", n.AuxInt)
		}
	case OpDeopt:
		s += " [" + n.DeoptReason + "]"
	}
	for _, in := range n.Inputs {
		if in == nil {
			s += " v?"
		} else {
			s += fmt.Sprintf(" v%d", in.ID)
		}
	}
	return s
}
