package ir

import (
	"strings"
	"testing"

	"pea/internal/bc"
)

// tinyMethod builds a minimal linked method for graph tests.
func tinyMethod(t *testing.T) (*bc.Program, *bc.Method, *bc.Class) {
	t.Helper()
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	box.Field("v", bc.KindInt)
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	m.Load(0).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	return p, p.ClassByName("C").MethodByName("m"), p.ClassByName("Box")
}

// straightGraph builds: entry { p0 = Param; c = Const 2; r = p0*c; return r }
func straightGraph(t *testing.T) (*Graph, *Node, *Node, *Node) {
	t.Helper()
	_, m, _ := tinyMethod(t)
	g := NewGraph(m)
	b := g.Entry()
	p := g.NewNode(OpParam, bc.KindInt)
	g.Append(b, p)
	c := g.ConstInt(b, 2)
	mul := g.NewNode(OpArith, bc.KindInt, p, c)
	mul.Aux2 = bc.OpMul
	g.Append(b, mul)
	ret := g.NewNode(OpReturn, bc.KindVoid, mul)
	g.SetTerm(b, ret)
	return g, p, c, mul
}

func TestVerifyAcceptsValidGraph(t *testing.T) {
	g, _, _, _ := straightGraph(t)
	if err := Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejections(t *testing.T) {
	cases := []struct {
		name  string
		mlt   func(g *Graph)
		wants string
	}{
		{"missing terminator", func(g *Graph) { g.Entry().Term = nil }, "no terminator"},
		{"nil input", func(g *Graph) { g.Entry().Nodes[2].Inputs[0] = nil }, "nil input"},
		{"unplaced input", func(g *Graph) {
			orphan := g.NewNode(OpConst, bc.KindInt)
			g.Entry().Nodes[2].Inputs[0] = orphan
		}, "not placed"},
		{"wrong block pointer", func(g *Graph) { g.Entry().Nodes[0].Block = nil }, "has Block"},
		{"terminator in body", func(g *Graph) {
			ret := g.NewNode(OpReturn, bc.KindVoid)
			ret.Block = g.Entry()
			g.Entry().Nodes = append(g.Entry().Nodes, ret)
		}, "contains terminator"},
		{"if without two succs", func(g *Graph) {
			b := g.Entry()
			iff := g.NewNode(OpIf, bc.KindVoid, b.Nodes[0])
			iff.Block = b
			b.Term = iff
		}, "has 0 succs"},
		{"bad arity", func(g *Graph) {
			g.Entry().Nodes[2].Inputs = g.Entry().Nodes[2].Inputs[:1]
		}, "has 1 inputs, want 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _, _, _ := straightGraph(t)
			tc.mlt(g)
			err := Verify(g)
			if err == nil || !strings.Contains(err.Error(), tc.wants) {
				t.Fatalf("got %v, want error containing %q", err, tc.wants)
			}
		})
	}
}

func TestReplaceAllUsagesIncludingFrameStates(t *testing.T) {
	g, p, c, mul := straightGraph(t)
	fs := &FrameState{
		Method: g.Method,
		BCI:    0,
		Locals: []*Node{p},
		Stack:  []*Node{mul},
	}
	eff := g.NewNode(OpPrint, bc.KindVoid, p)
	eff.FrameState = fs
	g.InsertBefore(g.Entry(), eff, g.Entry().Nodes[2])

	repl := g.ConstInt(g.Entry(), 99)
	g.ReplaceAllUsages(p, repl)
	if mul.Inputs[0] != repl {
		t.Fatal("node input not replaced")
	}
	if eff.Inputs[0] != repl {
		t.Fatal("effect input not replaced")
	}
	if fs.Locals[0] != repl {
		t.Fatal("frame state local not replaced")
	}
	if c.AuxInt != 2 {
		t.Fatal("unrelated node touched")
	}
}

func TestUsageCountsIncludeFrameStates(t *testing.T) {
	g, p, c, mul := straightGraph(t)
	outer := &FrameState{Method: g.Method, BCI: 0, Locals: []*Node{p}, Stack: nil}
	fs := &FrameState{
		Method: g.Method, BCI: 0,
		Locals: []*Node{p}, Stack: []*Node{c},
		Outer: outer,
		VirtualObjects: []*VirtualObjectState{{
			Object: func() *Node {
				vo := g.NewNode(OpVirtualObject, bc.KindRef)
				g.Append(g.Entry(), vo)
				return vo
			}(),
			Values: []*Node{mul},
		}},
	}
	eff := g.NewNode(OpRand, bc.KindInt)
	eff.FrameState = fs
	g.InsertBefore(g.Entry(), eff, nil)

	counts := g.UsageCounts()
	// p: mul input + two frame state locals (inner+outer).
	if counts[p] != 3 {
		t.Fatalf("param count = %d, want 3", counts[p])
	}
	if counts[c] < 2 { // mul input + fs stack
		t.Fatalf("const count = %d", counts[c])
	}
	if counts[mul] < 2 { // return input + virtual object value
		t.Fatalf("mul count = %d", counts[mul])
	}
}

func TestRemoveDeadBlocksPrunesPhis(t *testing.T) {
	_, m, _ := tinyMethod(t)
	g := NewGraph(m)
	entry := g.Entry()
	p := g.NewNode(OpParam, bc.KindInt)
	g.Append(entry, p)
	b1 := g.NewBlock()
	b2 := g.NewBlock()
	join := g.NewBlock()
	cmp := g.NewNode(OpCmp, bc.KindInt, p, p)
	g.Append(entry, cmp)
	g.SetTerm(entry, g.NewNode(OpIf, bc.KindVoid, cmp), b1, b2)
	c1 := g.ConstInt(b1, 1)
	c2 := g.ConstInt(b2, 2)
	g.SetTerm(b1, g.NewNode(OpGoto, bc.KindVoid), join)
	g.SetTerm(b2, g.NewNode(OpGoto, bc.KindVoid), join)
	phi := g.AddPhi(join, bc.KindInt, c1, c2)
	g.SetTerm(join, g.NewNode(OpReturn, bc.KindVoid, phi))
	if err := Verify(g); err != nil {
		t.Fatal(err)
	}
	// Cut the edge entry->b2 by rewriting the If into a Goto.
	gt := g.NewNode(OpGoto, bc.KindVoid)
	gt.Block = entry
	entry.Term = gt
	entry.Succs = []*Block{b1}
	for i, pr := range b2.Preds {
		if pr == entry {
			b2.Preds = append(b2.Preds[:i], b2.Preds[i+1:]...)
		}
	}
	if !g.RemoveDeadBlocks() {
		t.Fatal("nothing removed")
	}
	if len(phi.Inputs) != 1 || phi.Inputs[0] != c1 {
		t.Fatalf("phi inputs not pruned: %v", phi.Inputs)
	}
	if err := Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestFrameStateCopyIsDeep(t *testing.T) {
	g, p, c, mul := straightGraph(t)
	_ = g
	outer := &FrameState{Method: g.Method, BCI: 0, Locals: []*Node{p}}
	fs := &FrameState{
		Method: g.Method, BCI: 0,
		Locals: []*Node{p, c}, Stack: []*Node{mul}, Outer: outer,
		VirtualObjects: []*VirtualObjectState{{Object: p, Values: []*Node{c}, LockDepth: 2}},
	}
	cp := fs.Copy()
	cp.Locals[0] = nil
	cp.Outer.Locals[0] = nil
	cp.VirtualObjects[0].Values[0] = nil
	if fs.Locals[0] != p || fs.Outer.Locals[0] != p || fs.VirtualObjects[0].Values[0] != c {
		t.Fatal("Copy aliased the original")
	}
	if cp.VirtualObjects[0].LockDepth != 2 || cp.Depth() != 2 {
		t.Fatal("Copy lost fields")
	}
}

func TestDumpFormat(t *testing.T) {
	g, _, _, _ := straightGraph(t)
	d := Dump(g)
	for _, want := range []string{"graph C.m", "b0:", "Param", "Arith mul", "Return"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestInsertBeforePositions(t *testing.T) {
	g, _, _, mul := straightGraph(t)
	b := g.Entry()
	n := g.NewNode(OpConst, bc.KindInt)
	g.InsertBefore(b, n, mul)
	idx := -1
	for i, x := range b.Nodes {
		if x == n {
			idx = i
		}
	}
	if idx == -1 || b.Nodes[idx+1] != mul {
		t.Fatalf("node not inserted before target: %v", b.Nodes)
	}
	tail := g.NewNode(OpConst, bc.KindInt)
	g.InsertBefore(b, tail, nil)
	if b.Nodes[len(b.Nodes)-1] != tail {
		t.Fatal("nil position should append")
	}
}

func TestOpClassification(t *testing.T) {
	if !OpIf.IsTerminator() || !OpDeopt.IsTerminator() || OpNew.IsTerminator() {
		t.Fatal("terminator classification wrong")
	}
	if !OpPhi.IsPure() || OpNew.IsPure() || OpLoadField.IsPure() {
		t.Fatal("purity classification wrong")
	}
	if !OpInvoke.HasSideEffect() || OpNew.HasSideEffect() || OpMaterialize.HasSideEffect() {
		t.Fatal("side effect classification wrong")
	}
	div := &Node{Op: OpArith, Aux2: bc.OpDiv}
	if div.Pure() {
		t.Fatal("division must not be pure (it traps)")
	}
	add := &Node{Op: OpArith, Aux2: bc.OpAdd}
	if !add.Pure() {
		t.Fatal("addition is pure")
	}
}

func TestNodeString(t *testing.T) {
	_, _, box := tinyMethod(t)
	n := &Node{ID: 7, Op: OpNew, Class: box}
	if got := n.String(); !strings.Contains(got, "v7 = New Box") {
		t.Fatalf("String() = %q", got)
	}
	vo := &Node{ID: 9, Op: OpVirtualObject, ElemKind: bc.KindInt, AuxLen: 4, AuxInt: 2}
	if got := vo.String(); !strings.Contains(got, "int[4]") || !strings.Contains(got, "id=2") {
		t.Fatalf("String() = %q", got)
	}
}

func TestDumpDot(t *testing.T) {
	g, _, _, _ := straightGraph(t)
	d := DumpDot(g)
	for _, want := range []string{"digraph", "cluster_b0", "style=bold", "Arith", "->"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dot output missing %q:\n%s", want, d)
		}
	}
}
