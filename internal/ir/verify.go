package ir

import (
	"fmt"

	"pea/internal/bc"
)

// Verify checks structural invariants of the graph and returns the first
// violation found. It is run in tests after every compiler phase.
//
// Checked invariants:
//   - the entry block has no predecessors;
//   - pred/succ lists are mutually consistent (with multiplicity);
//   - every block ends in a terminator with the correct successor count;
//   - phi input counts match predecessor counts;
//   - node Block pointers match the block containing the node;
//   - no nil inputs; value inputs have value kinds;
//   - side-effecting nodes and deopts carry a FrameState;
//   - every node referenced as an input is placed in some block;
//   - every block in g.Blocks is reachable from the entry, and every
//     block reachable from the entry is listed in g.Blocks.
func Verify(g *Graph) error {
	if len(g.Blocks) == 0 {
		return fmt.Errorf("ir: graph has no blocks")
	}
	if len(g.Entry().Preds) != 0 {
		return fmt.Errorf("ir: entry block has %d preds", len(g.Entry().Preds))
	}
	placed := make(map[*Node]bool)
	blockSet := make(map[*Block]bool)
	for _, b := range g.Blocks {
		blockSet[b] = true
	}

	// Reachability: walk the successor graph from the entry. Both
	// directions must agree with g.Blocks — an unreachable block left in
	// the list is stale state (phases must RemoveDeadBlocks), and a
	// reachable block missing from the list would be skipped by every
	// later phase while still being executed.
	reached := make(map[*Block]bool, len(g.Blocks))
	work := []*Block{g.Entry()}
	reached[g.Entry()] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !reached[s] {
				reached[s] = true
				work = append(work, s)
			}
		}
	}
	for _, b := range g.Blocks {
		if !reached[b] {
			return fmt.Errorf("ir: %s is unreachable from entry but listed in g.Blocks", b)
		}
	}
	for b := range reached {
		if !blockSet[b] {
			return fmt.Errorf("ir: %s is reachable from entry but missing from g.Blocks", b)
		}
	}
	for _, b := range g.Blocks {
		g2 := func(n *Node) {
			placed[n] = true
		}
		for _, n := range b.Phis {
			g2(n)
		}
		for _, n := range b.Nodes {
			g2(n)
		}
		if b.Term != nil {
			g2(b.Term)
		}
	}

	for _, b := range g.Blocks {
		// Terminator checks.
		t := b.Term
		if t == nil {
			return fmt.Errorf("ir: %s has no terminator", b)
		}
		if !t.Op.IsTerminator() {
			return fmt.Errorf("ir: %s terminator is %s", b, t.Op)
		}
		wantSuccs := 0
		switch t.Op {
		case OpIf:
			wantSuccs = 2
			if len(t.Inputs) != 1 {
				return fmt.Errorf("ir: %s If has %d inputs", b, len(t.Inputs))
			}
			if t.Inputs[0].Kind != bc.KindInt {
				return fmt.Errorf("ir: %s If condition %s is not int", b, t.Inputs[0])
			}
		case OpGoto:
			wantSuccs = 1
		case OpReturn:
			if g.Method != nil {
				want := 0
				if g.Method.Ret != bc.KindVoid {
					want = 1
				}
				if len(t.Inputs) != want {
					return fmt.Errorf("ir: %s Return has %d inputs, want %d", b, len(t.Inputs), want)
				}
			}
		case OpThrow:
			if len(t.Inputs) != 1 {
				return fmt.Errorf("ir: %s Throw has %d inputs", b, len(t.Inputs))
			}
			// A covered throw transfers to its dispatch block; an
			// uncovered one unwinds out of the method.
			if len(b.Succs) == 1 {
				wantSuccs = 1
			}
		case OpDeopt:
			if t.FrameState == nil {
				return fmt.Errorf("ir: %s Deopt without FrameState", b)
			}
		case OpOnException:
			wantSuccs = 2
			if len(t.Inputs) != 1 {
				return fmt.Errorf("ir: %s OnException has %d inputs", b, len(t.Inputs))
			}
			if len(b.Nodes) == 0 || b.Nodes[len(b.Nodes)-1] != t.Inputs[0] {
				return fmt.Errorf("ir: %s OnException does not guard the block's last node", b)
			}
		case OpUnwind:
			wantSuccs = 0
		}
		if len(b.Succs) != wantSuccs {
			return fmt.Errorf("ir: %s (%s) has %d succs, want %d", b, t.Op, len(b.Succs), wantSuccs)
		}

		// Pred/succ consistency with multiplicity.
		for _, s := range b.Succs {
			if !blockSet[s] {
				return fmt.Errorf("ir: %s has successor %s not in graph", b, s)
			}
			if countBlocks(b.Succs, s) != countBlocks(s.Preds, b) {
				return fmt.Errorf("ir: edge %s->%s multiplicity mismatch", b, s)
			}
		}
		for _, p := range b.Preds {
			if !blockSet[p] {
				return fmt.Errorf("ir: %s has predecessor %s not in graph", b, p)
			}
		}

		// Phi checks.
		for _, p := range b.Phis {
			if p.Op != OpPhi {
				return fmt.Errorf("ir: %s phi list contains %s", b, p.Op)
			}
			if len(p.Inputs) != len(b.Preds) {
				return fmt.Errorf("ir: %s phi v%d has %d inputs for %d preds",
					b, p.ID, len(p.Inputs), len(b.Preds))
			}
		}

		// Per-node checks.
		check := func(n *Node) error {
			if n.Block != b {
				return fmt.Errorf("ir: v%d (%s) in %s has Block=%v", n.ID, n.Op, b, n.Block)
			}
			for i, in := range n.Inputs {
				if in == nil {
					return fmt.Errorf("ir: v%d (%s) has nil input %d", n.ID, n.Op, i)
				}
				if !placed[in] {
					return fmt.Errorf("ir: v%d (%s) input v%d (%s) is not placed in any block",
						n.ID, n.Op, in.ID, in.Op)
				}
				// OnException's input names the guarded node, not a value
				// use — the guard may be a void store or call.
				if in.Kind == bc.KindVoid && n.Op != OpOnException {
					return fmt.Errorf("ir: v%d (%s) uses void node v%d (%s)", n.ID, n.Op, in.ID, in.Op)
				}
			}
			if n.Op.HasSideEffect() && n.FrameState == nil {
				return fmt.Errorf("ir: side-effecting v%d (%s) has no FrameState", n.ID, n.Op)
			}
			if n.FrameState != nil {
				if err := verifyFrameState(n.FrameState, placed); err != nil {
					return fmt.Errorf("ir: v%d (%s): %w", n.ID, n.Op, err)
				}
			}
			if err := verifyArity(n); err != nil {
				return fmt.Errorf("ir: %s: %w", b, err)
			}
			return nil
		}
		for _, n := range b.Phis {
			if err := check(n); err != nil {
				return err
			}
		}
		for _, n := range b.Nodes {
			if n.Op.IsTerminator() {
				return fmt.Errorf("ir: %s body contains terminator v%d (%s)", b, n.ID, n.Op)
			}
			if n.Op == OpPhi {
				return fmt.Errorf("ir: %s body contains phi v%d", b, n.ID)
			}
			if err := check(n); err != nil {
				return err
			}
		}
		if err := check(t); err != nil {
			return err
		}
	}
	return nil
}

func countBlocks(list []*Block, b *Block) int {
	c := 0
	for _, x := range list {
		if x == b {
			c++
		}
	}
	return c
}

func verifyFrameState(fs *FrameState, placed map[*Node]bool) error {
	for s := fs; s != nil; s = s.Outer {
		if s.Method == nil {
			return fmt.Errorf("frame state without method")
		}
		if s.BCI < 0 || s.BCI >= len(s.Method.Code) {
			return fmt.Errorf("frame state bci %d out of range for %s", s.BCI, s.Method.QualifiedName())
		}
		if len(s.Locals) != s.Method.NumLocals() {
			return fmt.Errorf("frame state has %d locals for %s (want %d)",
				len(s.Locals), s.Method.QualifiedName(), s.Method.NumLocals())
		}
		chk := func(n *Node) error {
			if n != nil && !placed[n] {
				return fmt.Errorf("frame state references unplaced v%d (%s)", n.ID, n.Op)
			}
			return nil
		}
		for _, n := range s.Locals {
			if err := chk(n); err != nil {
				return err
			}
		}
		for _, n := range s.Stack {
			if err := chk(n); err != nil {
				return err
			}
		}
		for _, vo := range s.VirtualObjects {
			if vo.Object == nil || vo.Object.Op != OpVirtualObject {
				return fmt.Errorf("virtual object state without OpVirtualObject node")
			}
			for _, n := range vo.Values {
				if err := chk(n); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func verifyArity(n *Node) error {
	want := -1
	switch n.Op {
	case OpParam, OpConst, OpConstNull, OpRand, OpLoadStatic, OpVirtualObject, OpNew, OpDeopt,
		OpExceptionObject, OpUnwind:
		want = 0
	case OpNeg, OpInstanceOf, OpNewArray, OpLoadField, OpStoreStatic,
		OpArrayLength, OpMonitorEnter, OpMonitorExit, OpPrint, OpThrow, OpOnException:
		want = 1
	case OpArith, OpCmp, OpRefEq, OpStoreField, OpLoadIndexed:
		want = 2
	case OpStoreIndexed:
		want = 3
	}
	if want >= 0 && len(n.Inputs) != want {
		return fmt.Errorf("v%d (%s) has %d inputs, want %d", n.ID, n.Op, len(n.Inputs), want)
	}
	return nil
}
