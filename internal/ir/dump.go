package ir

import (
	"fmt"
	"strings"
)

// Dump renders the whole graph as text, one block per paragraph, in block
// order. The format is stable and used by golden tests (regenerating the
// paper's Figure 2 and Figure 8 for our IR).
func Dump(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s\n", g.Method.QualifiedName())
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "%s:", blk)
		if len(blk.Preds) > 0 {
			b.WriteString(" preds=[")
			for i, p := range blk.Preds {
				if i > 0 {
					b.WriteString(" ")
				}
				b.WriteString(p.String())
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
		for _, n := range blk.Phis {
			fmt.Fprintf(&b, "  %s\n", n)
		}
		for _, n := range blk.Nodes {
			fmt.Fprintf(&b, "  %s%s\n", n, fsSuffix(n))
		}
		if blk.Term != nil {
			fmt.Fprintf(&b, "  %s%s", blk.Term, fsSuffix(blk.Term))
			if len(blk.Succs) > 0 {
				b.WriteString(" ->")
				for _, s := range blk.Succs {
					fmt.Fprintf(&b, " %s", s)
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func fsSuffix(n *Node) string {
	if n.FrameState == nil {
		return ""
	}
	return "  {" + n.FrameState.String() + "}"
}
