package ir

import (
	"encoding/json"
	"fmt"
	"strings"

	"pea/internal/bc"
)

// Resolver resolves class names to linked bc entities during graph
// decoding. *bc.Program satisfies it. Decoding always rebinds the graph to
// the resolver's program: a persisted artifact carries only names, and the
// decoded graph's Class/Field/Method pointers are those of the local link,
// which is what makes artifacts produced by one process installable in
// another (pointer identity matters for subclass tests and vtables).
type Resolver interface {
	ClassByName(name string) *bc.Class
}

// The JSON graph model. Nodes are referenced everywhere by their ID (-1 for
// nil slots); frame states by index into the state table (-1 for none);
// blocks by their ID. The model is self-describing (op names, qualified
// entity names) so a stale or hand-edited file fails decoding with a
// useful error instead of silently resolving to the wrong entity.
type jsonGraph struct {
	Method        string      `json:"method"`
	CodeCycles    int64       `json:"codeCycles,omitempty"`
	IsOSR         bool        `json:"isOSR,omitempty"`
	OSREntryBCI   int         `json:"osrEntryBCI,omitempty"`
	NextNodeID    int         `json:"nextNodeID"`
	NextBlockID   int         `json:"nextBlockID"`
	NextVirtualID int64       `json:"nextVirtualID"`
	Nodes         []jsonNode  `json:"nodes"`
	Blocks        []jsonBlock `json:"blocks"`
	States        []jsonState `json:"states,omitempty"`
}

type jsonNode struct {
	ID          int    `json:"id"`
	Op          string `json:"op"`
	Kind        uint8  `json:"kind,omitempty"`
	Inputs      []int  `json:"inputs,omitempty"`
	AuxInt      int64  `json:"auxInt,omitempty"`
	AuxLen      int64  `json:"auxLen,omitempty"`
	AuxLock     int    `json:"auxLock,omitempty"`
	Aux2        uint8  `json:"aux2,omitempty"`
	Cond        uint8  `json:"cond,omitempty"`
	Class       string `json:"class,omitempty"`
	FieldClass  string `json:"fieldClass,omitempty"`
	FieldName   string `json:"fieldName,omitempty"`
	FieldStatic bool   `json:"fieldStatic,omitempty"`
	Method      string `json:"methodRef,omitempty"`
	Origin      string `json:"origin,omitempty"`
	ElemKind    uint8  `json:"elemKind,omitempty"`
	State       int    `json:"state"`
	DeoptReason string `json:"deoptReason,omitempty"`
	Action      uint8  `json:"action,omitempty"`
	BCI         int    `json:"bci"`
}

type jsonBlock struct {
	ID    int   `json:"id"`
	Phis  []int `json:"phis,omitempty"`
	Nodes []int `json:"nodes,omitempty"`
	Term  int   `json:"term"`
	Preds []int `json:"preds,omitempty"`
	Succs []int `json:"succs,omitempty"`
}

type jsonState struct {
	Method  string     `json:"method"`
	BCI     int        `json:"bci"`
	Locals  []int      `json:"locals,omitempty"`
	Stack   []int      `json:"stack,omitempty"`
	Outer   int        `json:"outer"`
	Virtual []jsonVirt `json:"virtual,omitempty"`
}

type jsonVirt struct {
	Object    int   `json:"object"`
	Values    []int `json:"values,omitempty"`
	LockDepth int   `json:"lockDepth,omitempty"`
}

// opByName inverts opNames for decoding.
var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		if op != int(OpInvalid) {
			m[name] = Op(op)
		}
	}
	return m
}()

// EncodeJSON serializes g into the versioned-envelope payload format:
// every node, block, and frame state flattened into ID-referenced tables,
// with bc entities (classes, fields, methods) reduced to their qualified
// names. DecodeJSON reverses it against any program whose content matches.
func EncodeJSON(g *Graph) ([]byte, error) {
	enc := &encoder{
		nodeSeen:  make(map[int]*Node),
		stateIdx:  make(map[*FrameState]int),
		nodeOrder: nil,
	}
	// Collect placed nodes in deterministic block order, then chase
	// references (inputs, frame states) for any floating nodes so the
	// table is closed under reachability.
	g.ForEachNode(func(_ *Block, n *Node) { enc.addNode(n) })
	for i := 0; i < len(enc.nodeOrder); i++ { // nodeOrder grows while chasing
		n := enc.nodeOrder[i]
		for _, in := range n.Inputs {
			enc.addNode(in)
		}
		if n.FrameState != nil {
			n.FrameState.ForEachValue(func(v *Node) { enc.addNode(v) })
		}
	}
	if enc.err != nil {
		return nil, enc.err
	}

	jg := jsonGraph{
		Method:        g.Method.QualifiedName(),
		CodeCycles:    g.CodeCycles,
		IsOSR:         g.IsOSR,
		OSREntryBCI:   g.OSREntryBCI,
		NextNodeID:    g.nextNodeID,
		NextBlockID:   g.nextBlockID,
		NextVirtualID: g.nextVirtualID,
	}
	for _, n := range enc.nodeOrder {
		jn, err := encodeNode(n, enc)
		if err != nil {
			return nil, err
		}
		jg.Nodes = append(jg.Nodes, jn)
	}
	for _, b := range g.Blocks {
		jb := jsonBlock{ID: b.ID, Term: -1}
		for _, n := range b.Phis {
			jb.Phis = append(jb.Phis, n.ID)
		}
		for _, n := range b.Nodes {
			jb.Nodes = append(jb.Nodes, n.ID)
		}
		if b.Term != nil {
			jb.Term = b.Term.ID
		}
		for _, p := range b.Preds {
			jb.Preds = append(jb.Preds, p.ID)
		}
		for _, s := range b.Succs {
			jb.Succs = append(jb.Succs, s.ID)
		}
		jg.Blocks = append(jg.Blocks, jb)
	}
	jg.States = enc.states
	return json.Marshal(&jg)
}

type encoder struct {
	nodeSeen  map[int]*Node
	nodeOrder []*Node
	stateIdx  map[*FrameState]int
	states    []jsonState
	err       error
}

func (e *encoder) addNode(n *Node) {
	if n == nil || e.err != nil {
		return
	}
	if prev, ok := e.nodeSeen[n.ID]; ok {
		if prev != n {
			e.err = fmt.Errorf("ir: encode: two distinct nodes share id v%d", n.ID)
		}
		return
	}
	e.nodeSeen[n.ID] = n
	e.nodeOrder = append(e.nodeOrder, n)
}

// stateRef interns one frame state chain, returning its table index.
func (e *encoder) stateRef(fs *FrameState) int {
	if fs == nil {
		return -1
	}
	if i, ok := e.stateIdx[fs]; ok {
		return i
	}
	i := len(e.states)
	e.stateIdx[fs] = i
	e.states = append(e.states, jsonState{}) // reserve slot; fill below
	js := jsonState{
		Method: fs.Method.QualifiedName(),
		BCI:    fs.BCI,
		Locals: nodeIDs(fs.Locals),
		Stack:  nodeIDs(fs.Stack),
		Outer:  e.stateRef(fs.Outer),
	}
	for _, vo := range fs.VirtualObjects {
		js.Virtual = append(js.Virtual, jsonVirt{
			Object:    vo.Object.ID,
			Values:    nodeIDs(vo.Values),
			LockDepth: vo.LockDepth,
		})
	}
	e.states[i] = js
	return i
}

func nodeIDs(ns []*Node) []int {
	if len(ns) == 0 {
		return nil
	}
	out := make([]int, len(ns))
	for i, n := range ns {
		if n == nil {
			out[i] = -1
		} else {
			out[i] = n.ID
		}
	}
	return out
}

func encodeNode(n *Node, e *encoder) (jsonNode, error) {
	jn := jsonNode{
		ID:          n.ID,
		Op:          n.Op.String(),
		Kind:        uint8(n.Kind),
		Inputs:      nodeIDs(n.Inputs),
		AuxInt:      n.AuxInt,
		AuxLen:      n.AuxLen,
		AuxLock:     n.AuxLock,
		Aux2:        uint8(n.Aux2),
		Cond:        uint8(n.Cond),
		ElemKind:    uint8(n.ElemKind),
		State:       e.stateRef(n.FrameState),
		DeoptReason: n.DeoptReason,
		Action:      uint8(n.Action),
		BCI:         n.BCI,
	}
	if _, ok := opByName[jn.Op]; !ok {
		return jn, fmt.Errorf("ir: encode: v%d has unknown op %s", n.ID, jn.Op)
	}
	if n.Class != nil {
		jn.Class = n.Class.Name
	}
	if n.Field != nil {
		jn.FieldClass = n.Field.Class.Name
		jn.FieldName = n.Field.Name
		jn.FieldStatic = n.Field.Static
	}
	if n.Method != nil {
		jn.Method = n.Method.QualifiedName()
	}
	if n.Origin != nil {
		jn.Origin = n.Origin.QualifiedName()
	}
	return jn, nil
}

// DecodeJSON rebuilds a graph from EncodeJSON output, rebinding every
// class, field, and method reference against r's program. Any
// inconsistency — unknown op or entity name, dangling node/block/state
// reference, duplicate IDs — fails with an error, never a panic: decoding
// untrusted bytes is the disk-cache trust boundary's first gate (the
// second is the install-boundary check pass).
func DecodeJSON(data []byte, r Resolver) (*Graph, error) {
	if r == nil {
		return nil, fmt.Errorf("ir: decode: nil resolver")
	}
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, fmt.Errorf("ir: decode: %w", err)
	}
	d := &decoder{r: r}
	method, err := d.method(jg.Method)
	if err != nil {
		return nil, err
	}

	// Pass 1: materialize empty nodes and blocks so references resolve.
	d.nodes = make(map[int]*Node, len(jg.Nodes))
	maxNodeID := -1
	for _, jn := range jg.Nodes {
		if _, dup := d.nodes[jn.ID]; dup {
			return nil, fmt.Errorf("ir: decode: duplicate node id v%d", jn.ID)
		}
		op, ok := opByName[jn.Op]
		if !ok {
			return nil, fmt.Errorf("ir: decode: v%d: unknown op %q", jn.ID, jn.Op)
		}
		d.nodes[jn.ID] = &Node{ID: jn.ID, Op: op}
		if jn.ID > maxNodeID {
			maxNodeID = jn.ID
		}
	}
	d.blocks = make(map[int]*Block, len(jg.Blocks))
	blocks := make([]*Block, 0, len(jg.Blocks))
	maxBlockID := -1
	for _, jb := range jg.Blocks {
		if _, dup := d.blocks[jb.ID]; dup {
			return nil, fmt.Errorf("ir: decode: duplicate block id b%d", jb.ID)
		}
		b := &Block{ID: jb.ID}
		d.blocks[jb.ID] = b
		blocks = append(blocks, b)
		if jb.ID > maxBlockID {
			maxBlockID = jb.ID
		}
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("ir: decode: graph has no blocks")
	}

	// Pass 2: decode states (they reference only nodes).
	states := make([]*FrameState, len(jg.States))
	for i := range jg.States {
		states[i] = &FrameState{}
	}
	for i, js := range jg.States {
		fs := states[i]
		if fs.Method, err = d.method(js.Method); err != nil {
			return nil, fmt.Errorf("ir: decode: state %d: %w", i, err)
		}
		fs.BCI = js.BCI
		if fs.Locals, err = d.nodeList(js.Locals); err != nil {
			return nil, fmt.Errorf("ir: decode: state %d locals: %w", i, err)
		}
		if fs.Stack, err = d.nodeList(js.Stack); err != nil {
			return nil, fmt.Errorf("ir: decode: state %d stack: %w", i, err)
		}
		if js.Outer >= 0 {
			if js.Outer >= len(states) {
				return nil, fmt.Errorf("ir: decode: state %d outer %d out of range", i, js.Outer)
			}
			fs.Outer = states[js.Outer]
		}
		for _, jv := range js.Virtual {
			obj, err := d.node(jv.Object)
			if err != nil || obj == nil {
				return nil, fmt.Errorf("ir: decode: state %d virtual object v%d unknown", i, jv.Object)
			}
			vals, err := d.nodeList(jv.Values)
			if err != nil {
				return nil, fmt.Errorf("ir: decode: state %d virtual values: %w", i, err)
			}
			fs.VirtualObjects = append(fs.VirtualObjects, &VirtualObjectState{
				Object:    obj,
				Values:    vals,
				LockDepth: jv.LockDepth,
			})
		}
	}
	// Reject cyclic outer chains (Depth() and the deopt runtime recurse).
	for i := range states {
		seen := make(map[*FrameState]bool)
		for s := states[i]; s != nil; s = s.Outer {
			if seen[s] {
				return nil, fmt.Errorf("ir: decode: state %d has a cyclic outer chain", i)
			}
			seen[s] = true
		}
	}

	// Pass 3: fill the nodes.
	for _, jn := range jg.Nodes {
		n := d.nodes[jn.ID]
		n.Kind = bc.Kind(jn.Kind)
		if n.Inputs, err = d.nodeList(jn.Inputs); err != nil {
			return nil, fmt.Errorf("ir: decode: v%d inputs: %w", jn.ID, err)
		}
		n.AuxInt = jn.AuxInt
		n.AuxLen = jn.AuxLen
		n.AuxLock = jn.AuxLock
		n.Aux2 = bc.Op(jn.Aux2)
		n.Cond = bc.Cond(jn.Cond)
		n.ElemKind = bc.Kind(jn.ElemKind)
		n.DeoptReason = jn.DeoptReason
		n.Action = DeoptAction(jn.Action)
		n.BCI = jn.BCI
		if jn.Class != "" {
			if n.Class = r.ClassByName(jn.Class); n.Class == nil {
				return nil, fmt.Errorf("ir: decode: v%d: unknown class %q", jn.ID, jn.Class)
			}
		}
		if jn.FieldName != "" {
			c := r.ClassByName(jn.FieldClass)
			if c == nil {
				return nil, fmt.Errorf("ir: decode: v%d: unknown class %q", jn.ID, jn.FieldClass)
			}
			if jn.FieldStatic {
				n.Field = c.StaticByName(jn.FieldName)
			} else {
				n.Field = c.FieldByName(jn.FieldName)
			}
			if n.Field == nil {
				return nil, fmt.Errorf("ir: decode: v%d: unknown field %s.%s", jn.ID, jn.FieldClass, jn.FieldName)
			}
		}
		if jn.Method != "" {
			if n.Method, err = d.method(jn.Method); err != nil {
				return nil, fmt.Errorf("ir: decode: v%d: %w", jn.ID, err)
			}
		}
		if jn.Origin != "" {
			if n.Origin, err = d.method(jn.Origin); err != nil {
				return nil, fmt.Errorf("ir: decode: v%d origin: %w", jn.ID, err)
			}
		}
		if jn.State >= 0 {
			if jn.State >= len(states) {
				return nil, fmt.Errorf("ir: decode: v%d: state %d out of range", jn.ID, jn.State)
			}
			n.FrameState = states[jn.State]
		}
	}

	// Pass 4: wire the blocks.
	placed := make(map[int]bool)
	place := func(id int, b *Block, what string) (*Node, error) {
		n, err := d.node(id)
		if err != nil || n == nil {
			return nil, fmt.Errorf("ir: decode: b%d %s v%d unknown", b.ID, what, id)
		}
		if placed[id] {
			return nil, fmt.Errorf("ir: decode: v%d placed twice", id)
		}
		placed[id] = true
		n.Block = b
		return n, nil
	}
	for _, jb := range jg.Blocks {
		b := d.blocks[jb.ID]
		for _, id := range jb.Phis {
			n, err := place(id, b, "phi")
			if err != nil {
				return nil, err
			}
			b.Phis = append(b.Phis, n)
		}
		for _, id := range jb.Nodes {
			n, err := place(id, b, "node")
			if err != nil {
				return nil, err
			}
			b.Nodes = append(b.Nodes, n)
		}
		if jb.Term >= 0 {
			n, err := place(jb.Term, b, "terminator")
			if err != nil {
				return nil, err
			}
			b.Term = n
		}
		for _, id := range jb.Preds {
			p, ok := d.blocks[id]
			if !ok {
				return nil, fmt.Errorf("ir: decode: b%d pred b%d unknown", jb.ID, id)
			}
			b.Preds = append(b.Preds, p)
		}
		for _, id := range jb.Succs {
			s, ok := d.blocks[id]
			if !ok {
				return nil, fmt.Errorf("ir: decode: b%d succ b%d unknown", jb.ID, id)
			}
			b.Succs = append(b.Succs, s)
		}
	}

	g := &Graph{
		Method:        method,
		Blocks:        blocks,
		CodeCycles:    jg.CodeCycles,
		IsOSR:         jg.IsOSR,
		OSREntryBCI:   jg.OSREntryBCI,
		nextNodeID:    maxInt(jg.NextNodeID, maxNodeID+1),
		nextBlockID:   maxInt(jg.NextBlockID, maxBlockID+1),
		nextVirtualID: jg.NextVirtualID,
	}
	return g, nil
}

type decoder struct {
	r      Resolver
	nodes  map[int]*Node
	blocks map[int]*Block
	// methodMemo caches qualified-name resolution (states repeat it).
	methodMemo map[string]*bc.Method
}

func (d *decoder) node(id int) (*Node, error) {
	if id < 0 {
		return nil, nil
	}
	n, ok := d.nodes[id]
	if !ok {
		return nil, fmt.Errorf("unknown node v%d", id)
	}
	return n, nil
}

func (d *decoder) nodeList(ids []int) ([]*Node, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	out := make([]*Node, len(ids))
	for i, id := range ids {
		n, err := d.node(id)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// method resolves a qualified "Class.name" method reference.
func (d *decoder) method(qname string) (*bc.Method, error) {
	if m, ok := d.methodMemo[qname]; ok {
		return m, nil
	}
	cls, name, ok := strings.Cut(qname, ".")
	if !ok {
		return nil, fmt.Errorf("malformed method name %q", qname)
	}
	c := d.r.ClassByName(cls)
	if c == nil {
		return nil, fmt.Errorf("unknown class %q", cls)
	}
	m := c.MethodByName(name)
	if m == nil {
		return nil, fmt.Errorf("unknown method %q", qname)
	}
	if d.methodMemo == nil {
		d.methodMemo = make(map[string]*bc.Method)
	}
	d.methodMemo[qname] = m
	return m, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
