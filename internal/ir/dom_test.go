package ir

import (
	"strings"
	"testing"

	"pea/internal/bc"
)

// diamondGraph builds:
//
//	entry -> b1, b2; b1 -> join; b2 -> join; join -> return
func diamondGraph(t *testing.T) (g *Graph, entry, b1, b2, join *Block) {
	t.Helper()
	_, m, _ := tinyMethod(t)
	g = NewGraph(m)
	entry = g.Entry()
	p := g.NewNode(OpParam, bc.KindInt)
	g.Append(entry, p)
	b1 = g.NewBlock()
	b2 = g.NewBlock()
	join = g.NewBlock()
	g.SetTerm(entry, g.NewNode(OpIf, bc.KindVoid, p), b1, b2)
	c1 := g.ConstInt(b1, 1)
	c2 := g.ConstInt(b2, 2)
	g.SetTerm(b1, g.NewNode(OpGoto, bc.KindVoid), join)
	g.SetTerm(b2, g.NewNode(OpGoto, bc.KindVoid), join)
	phi := g.AddPhi(join, bc.KindInt, c1, c2)
	g.SetTerm(join, g.NewNode(OpReturn, bc.KindVoid, phi))
	return g, entry, b1, b2, join
}

func TestDomTreeDiamond(t *testing.T) {
	g, entry, b1, b2, join := diamondGraph(t)
	d := NewDomTree(g)
	if len(d.RPO) != 4 || d.RPO[0] != entry {
		t.Fatalf("RPO = %v", d.RPO)
	}
	if d.IDom[entry] != nil {
		t.Fatalf("entry idom = %v", d.IDom[entry])
	}
	for _, b := range []*Block{b1, b2, join} {
		if d.IDom[b] != entry {
			t.Fatalf("idom(%s) = %v, want entry", b, d.IDom[b])
		}
	}
	if !d.Dominates(entry, join) || !d.Dominates(join, join) {
		t.Fatal("entry and join must dominate join")
	}
	if d.Dominates(b1, join) || d.Dominates(b2, join) || d.Dominates(b1, b2) {
		t.Fatal("branch arms must not dominate the merge or each other")
	}
}

func TestDomTreeLoop(t *testing.T) {
	// entry -> header; header -> body, exit; body -> header (back edge).
	_, m, _ := tinyMethod(t)
	g := NewGraph(m)
	entry := g.Entry()
	p := g.NewNode(OpParam, bc.KindInt)
	g.Append(entry, p)
	header := g.NewBlock()
	body := g.NewBlock()
	exit := g.NewBlock()
	g.SetTerm(entry, g.NewNode(OpGoto, bc.KindVoid), header)
	g.SetTerm(header, g.NewNode(OpIf, bc.KindVoid, p), body, exit)
	g.SetTerm(body, g.NewNode(OpGoto, bc.KindVoid), header)
	g.SetTerm(exit, g.NewNode(OpReturn, bc.KindVoid, p))
	d := NewDomTree(g)
	if d.IDom[header] != entry || d.IDom[body] != header || d.IDom[exit] != header {
		t.Fatalf("idoms: header=%v body=%v exit=%v",
			d.IDom[header], d.IDom[body], d.IDom[exit])
	}
	if !d.Dominates(header, body) || d.Dominates(body, exit) {
		t.Fatal("loop dominance wrong")
	}
}

func TestDomTreeUnreachableBlock(t *testing.T) {
	g, _, _, _, _ := diamondGraph(t)
	dead := g.NewBlock()
	g.SetTerm(dead, g.NewNode(OpReturn, bc.KindVoid, g.ConstInt(dead, 0)))
	d := NewDomTree(g)
	if d.Reachable(dead) {
		t.Fatal("dead block reported reachable")
	}
	if d.Dominates(g.Entry(), dead) {
		t.Fatal("nothing dominates an unreachable block")
	}
	if len(d.RPO) != 4 {
		t.Fatalf("RPO includes unreachable block: %v", d.RPO)
	}
}

func TestDomTreesBuiltCounter(t *testing.T) {
	g, _, _, _, _ := diamondGraph(t)
	before := DomTreesBuilt()
	NewDomTree(g)
	if got := DomTreesBuilt(); got != before+1 {
		t.Fatalf("counter %d -> %d, want +1", before, got)
	}
}

// TestVerifyRejectsUnreachableBlock pins the reachability gap fix: a block
// left in g.Blocks but cut off from the entry must be a Verify error (it
// used to pass silently).
func TestVerifyRejectsUnreachableBlock(t *testing.T) {
	g, _, _, _, _ := diamondGraph(t)
	dead := g.NewBlock()
	g.SetTerm(dead, g.NewNode(OpReturn, bc.KindVoid, g.ConstInt(dead, 0)))
	err := Verify(g)
	if err == nil || !strings.Contains(err.Error(), "unreachable from entry") {
		t.Fatalf("got %v, want unreachable-block error", err)
	}
}

// TestVerifyRejectsMissingReachableBlock pins the other direction: a block
// reachable through successor edges but missing from g.Blocks is an error.
func TestVerifyRejectsMissingReachableBlock(t *testing.T) {
	g, _, _, b2, _ := diamondGraph(t)
	for i, b := range g.Blocks {
		if b == b2 {
			g.Blocks = append(g.Blocks[:i], g.Blocks[i+1:]...)
			break
		}
	}
	err := Verify(g)
	if err == nil || !strings.Contains(err.Error(), "missing from g.Blocks") {
		t.Fatalf("got %v, want missing-block error", err)
	}
}
