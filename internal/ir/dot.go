package ir

import (
	"fmt"
	"strings"
)

// DumpDot renders the graph in Graphviz DOT format, in the visual style of
// the paper's Figure 2: control-flow edges are bold and point downward
// between blocks; data-flow edges are thin and point from user to input.
// Render with `dot -Tsvg`.
func DumpDot(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Method.QualifiedName())
	b.WriteString("  node [shape=box, fontname=\"Helvetica\", fontsize=10];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=9];\n")

	nodeName := func(n *Node) string { return fmt.Sprintf("n%d", n.ID) }
	label := func(n *Node) string {
		s := n.String()
		// Strip the "vN = " prefix and input list for a compact label.
		if i := strings.Index(s, " = "); i >= 0 {
			s = s[i+3:]
		}
		if i := strings.Index(s, " v"); i >= 0 {
			// keep operands out of the label; edges carry them
			s = s[:i]
		}
		return fmt.Sprintf("v%d %s", n.ID, s)
	}

	emitNode := func(n *Node, style string) {
		fmt.Fprintf(&b, "    %s [label=%q%s];\n", nodeName(n), label(n), style)
	}

	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "  subgraph cluster_b%d {\n", blk.ID)
		fmt.Fprintf(&b, "    label=\"b%d\"; color=gray;\n", blk.ID)
		for _, n := range blk.Phis {
			emitNode(n, ", style=rounded")
		}
		for _, n := range blk.Nodes {
			style := ""
			if n.Op == OpVirtualObject {
				style = ", style=dashed"
			}
			emitNode(n, style)
		}
		if blk.Term != nil {
			emitNode(blk.Term, ", style=bold")
		}
		b.WriteString("  }\n")
	}

	// Control-flow edges: terminator -> first node of the successor (or
	// its terminator when empty), bold.
	anchor := func(blk *Block) *Node {
		if len(blk.Phis) > 0 {
			return blk.Phis[0]
		}
		if len(blk.Nodes) > 0 {
			return blk.Nodes[0]
		}
		return blk.Term
	}
	for _, blk := range g.Blocks {
		if blk.Term == nil {
			continue
		}
		for i, s := range blk.Succs {
			lbl := ""
			if blk.Term.Op == OpIf {
				lbl = []string{" [label=\"true\"]", " [label=\"false\"]"}[i]
				lbl = strings.Replace(lbl, "]", ", style=bold, weight=10]", 1)
			} else {
				lbl = " [style=bold, weight=10]"
			}
			fmt.Fprintf(&b, "  %s -> %s%s;\n", nodeName(blk.Term), nodeName(anchor(s)), lbl)
		}
	}

	// Data-flow edges: thin, user -> input (arrows point "upward" as in
	// the paper's rendering convention).
	g.ForEachNode(func(_ *Block, n *Node) {
		for _, in := range n.Inputs {
			if in != nil {
				fmt.Fprintf(&b, "  %s -> %s [color=gray50, arrowsize=0.6];\n",
					nodeName(n), nodeName(in))
			}
		}
	})
	b.WriteString("}\n")
	return b.String()
}
