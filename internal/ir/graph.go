package ir

import (
	"fmt"

	"pea/internal/bc"
)

// Block is a basic block: phis, ordered fixed/value nodes, and a terminator.
type Block struct {
	ID    int
	Phis  []*Node // OpPhi nodes; input i corresponds to Preds[i]
	Nodes []*Node // ordered instructions (fixed effects and placed values)
	Term  *Node   // OpIf/OpGoto/OpReturn/OpThrow/OpDeopt

	Preds []*Block // predecessor blocks, order significant for phis
	Succs []*Block // successors; OpIf: [true, false]
}

// String returns "b3".
func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// PredIndex returns the index of p in b.Preds, or -1.
func (b *Block) PredIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// Graph is the IR of one (possibly inlined) compilation unit.
type Graph struct {
	Method *bc.Method
	Blocks []*Block // Blocks[0] is the entry block

	// CodeCycles is a per-invocation cycle charge modeling front-end
	// and instruction-cache pressure proportional to compiled code
	// size. The JIT sets it after optimization; the executor adds it on
	// every entry. This reproduces the paper's observation that PEA
	// "can in rare cases increase the size of compiled methods, which
	// has a negative influence" (§6.1, jython).
	CodeCycles int64

	// IsOSR marks an on-stack-replacement graph: the entry block is an
	// OSR preamble whose OpParam nodes are the live interpreter locals
	// (AuxInt = local slot) and operand-stack slots (AuxInt = NumLocals +
	// stack depth) at OSREntryBCI, and execution starts at the hot loop
	// header instead of the method head.
	IsOSR bool
	// OSREntryBCI is the loop-header bytecode index an OSR graph enters
	// at (meaningless when IsOSR is false).
	OSREntryBCI int

	nextNodeID  int
	nextBlockID int
	// nextVirtualID numbers OpVirtualObject nodes.
	nextVirtualID int64
}

// NewGraph creates an empty graph for m with an entry block.
func NewGraph(m *bc.Method) *Graph {
	g := &Graph{Method: m}
	g.NewBlock()
	return g
}

// Entry returns the entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// Graph returns g itself, letting a bare graph stand in wherever a
// compilation artifact (anything wrapping a scheduled graph) is expected.
func (g *Graph) Graph() *Graph { return g }

// NewBlock appends a fresh empty block.
func (g *Graph) NewBlock() *Block {
	b := &Block{ID: g.nextBlockID}
	g.nextBlockID++
	g.Blocks = append(g.Blocks, b)
	return b
}

// NewNode creates an unplaced node; callers append it via Append/SetTerm/
// AddPhi or keep it as a pure value placed explicitly.
func (g *Graph) NewNode(op Op, kind bc.Kind, inputs ...*Node) *Node {
	n := &Node{ID: g.nextNodeID, Op: op, Kind: kind, Inputs: inputs, BCI: -1}
	g.nextNodeID++
	return n
}

// NextVirtualID returns a fresh virtual object id for OpVirtualObject.
func (g *Graph) NextVirtualID() int64 {
	g.nextVirtualID++
	return g.nextVirtualID
}

// Append places n at the end of b's node list.
func (g *Graph) Append(b *Block, n *Node) *Node {
	n.Block = b
	b.Nodes = append(b.Nodes, n)
	return n
}

// SetTerm sets b's terminator and wires successors.
func (g *Graph) SetTerm(b *Block, n *Node, succs ...*Block) {
	n.Block = b
	b.Term = n
	b.Succs = succs
	for _, s := range succs {
		s.Preds = append(s.Preds, b)
	}
}

// AddPhi adds a phi node to b.
func (g *Graph) AddPhi(b *Block, kind bc.Kind, inputs ...*Node) *Node {
	n := g.NewNode(OpPhi, kind, inputs...)
	n.Block = b
	b.Phis = append(b.Phis, n)
	return n
}

// ConstInt returns a new integer constant node placed in the entry block.
func (g *Graph) ConstInt(b *Block, v int64) *Node {
	n := g.NewNode(OpConst, bc.KindInt)
	n.AuxInt = v
	return g.Append(b, n)
}

// ConstNull returns a new null constant node placed in b.
func (g *Graph) ConstNull(b *Block) *Node {
	return g.Append(b, g.NewNode(OpConstNull, bc.KindRef))
}

// ForEachNode visits every node in the graph (phis, body nodes,
// terminators) in deterministic block order.
func (g *Graph) ForEachNode(f func(b *Block, n *Node)) {
	for _, b := range g.Blocks {
		for _, n := range b.Phis {
			f(b, n)
		}
		for _, n := range b.Nodes {
			f(b, n)
		}
		if b.Term != nil {
			f(b, b.Term)
		}
	}
}

// NumNodes counts all nodes in the graph.
func (g *Graph) NumNodes() int {
	n := 0
	g.ForEachNode(func(*Block, *Node) { n++ })
	return n
}

// replaceIn substitutes old with new in a node slice, returning the number
// of replacements.
func replaceIn(list []*Node, old, new *Node) int {
	c := 0
	for i, n := range list {
		if n == old {
			list[i] = new
			c++
		}
	}
	return c
}

// ReplaceAllUsages replaces every use of old with new throughout the graph:
// node inputs and all FrameState references (locals, stack, virtual object
// field values, recursively through outer states).
func (g *Graph) ReplaceAllUsages(old, new *Node) {
	seen := make(map[*FrameState]bool)
	g.ForEachNode(func(_ *Block, n *Node) {
		if n == old {
			return
		}
		replaceIn(n.Inputs, old, new)
		if n.FrameState != nil {
			n.FrameState.replaceUsages(old, new, seen)
		}
	})
}

// UsageCounts computes, for every node, how many times it is referenced by
// other nodes' inputs and by frame states. The result maps node -> count.
func (g *Graph) UsageCounts() map[*Node]int {
	counts := make(map[*Node]int)
	seenFS := make(map[*FrameState]bool)
	var countFS func(fs *FrameState)
	countFS = func(fs *FrameState) {
		if fs == nil || seenFS[fs] {
			return
		}
		seenFS[fs] = true
		for _, n := range fs.Locals {
			if n != nil {
				counts[n]++
			}
		}
		for _, n := range fs.Stack {
			if n != nil {
				counts[n]++
			}
		}
		for _, vo := range fs.VirtualObjects {
			counts[vo.Object]++
			for _, n := range vo.Values {
				if n != nil {
					counts[n]++
				}
			}
		}
		countFS(fs.Outer)
	}
	g.ForEachNode(func(_ *Block, n *Node) {
		for _, in := range n.Inputs {
			if in != nil {
				counts[in]++
			}
		}
		countFS(n.FrameState)
	})
	return counts
}

// RemoveNode deletes n from its block's node list (not for phis or
// terminators). The caller must have rewired all usages.
func (g *Graph) RemoveNode(n *Node) {
	b := n.Block
	if b == nil {
		return
	}
	for i, x := range b.Nodes {
		if x == n {
			b.Nodes = append(b.Nodes[:i], b.Nodes[i+1:]...)
			n.Block = nil
			return
		}
	}
}

// RemovePhi deletes a phi from its block.
func (g *Graph) RemovePhi(p *Node) {
	b := p.Block
	if b == nil {
		return
	}
	for i, x := range b.Phis {
		if x == p {
			b.Phis = append(b.Phis[:i], b.Phis[i+1:]...)
			p.Block = nil
			return
		}
	}
}

// InsertBefore inserts n into b's node list immediately before pos. If pos
// is nil or not found, n is appended at the end (before the terminator).
func (g *Graph) InsertBefore(b *Block, n *Node, pos *Node) {
	n.Block = b
	if pos != nil {
		for i, x := range b.Nodes {
			if x == pos {
				b.Nodes = append(b.Nodes[:i], append([]*Node{n}, b.Nodes[i:]...)...)
				return
			}
		}
	}
	b.Nodes = append(b.Nodes, n)
}

// RemoveDeadBlocks drops blocks unreachable from the entry and prunes
// predecessor lists and phi inputs accordingly. It reports whether
// anything was removed.
func (g *Graph) RemoveDeadBlocks() bool {
	reachable := make(map[*Block]bool, len(g.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if reachable[b] {
			return
		}
		reachable[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry())
	for _, b := range g.Blocks {
		if !reachable[b] {
			continue
		}
		// Prune dead preds and matching phi inputs.
		for i := len(b.Preds) - 1; i >= 0; i-- {
			if !reachable[b.Preds[i]] {
				b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
				for _, p := range b.Phis {
					p.Inputs = append(p.Inputs[:i], p.Inputs[i+1:]...)
				}
			}
		}
	}
	kept := g.Blocks[:0]
	for _, b := range g.Blocks {
		if reachable[b] {
			kept = append(kept, b)
		}
	}
	removed := len(g.Blocks) - len(kept)
	g.Blocks = kept
	return removed > 0
}
