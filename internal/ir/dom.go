package ir

import "sync/atomic"

// domTreesBuilt counts every dominator tree construction. The strict
// checker's zero-overhead guarantee ("check level off builds no dominator
// trees on the compile path") is pinned against this counter in tests.
var domTreesBuilt atomic.Int64

// DomTreesBuilt returns the number of dominator trees built since process
// start. Test-only observability; never reset.
func DomTreesBuilt() int64 { return domTreesBuilt.Load() }

// DomTree is a dominator tree over the blocks of a graph reachable from
// the entry, built with the iterative Cooper–Harvey–Kennedy algorithm
// over reverse postorder. Unreachable blocks have no entry in Index or
// IDom; Reachable reports them as false.
type DomTree struct {
	G *Graph
	// RPO is the reverse postorder over reachable blocks; RPO[0] is the
	// entry.
	RPO []*Block
	// Index maps a reachable block to its RPO position.
	Index map[*Block]int
	// IDom maps each reachable block to its immediate dominator
	// (entry -> nil).
	IDom map[*Block]*Block
}

// NewDomTree builds the dominator tree for g. The graph may contain
// unreachable blocks; they are simply absent from the result.
func NewDomTree(g *Graph) *DomTree {
	domTreesBuilt.Add(1)
	d := &DomTree{G: g}
	d.computeRPO()
	d.computeIDoms()
	return d
}

func (d *DomTree) computeRPO() {
	seen := make(map[*Block]bool, len(d.G.Blocks))
	post := make([]*Block, 0, len(d.G.Blocks))
	// Iterative DFS (graphs can be deep after inlining + OSR preambles).
	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{d.G.Entry(), 0}}
	seen[d.G.Entry()] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.b.Succs) {
			s := f.b.Succs[f.i]
			f.i++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	d.RPO = make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		d.RPO = append(d.RPO, post[i])
	}
	d.Index = make(map[*Block]int, len(d.RPO))
	for i, b := range d.RPO {
		d.Index[b] = i
	}
}

// computeIDoms implements the Cooper–Harvey–Kennedy iterative algorithm
// ("A Simple, Fast Dominance Algorithm") over the reverse postorder.
func (d *DomTree) computeIDoms() {
	idom := make(map[*Block]*Block, len(d.RPO))
	entry := d.RPO[0]
	idom[entry] = entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for d.Index[a] > d.Index[b] {
				a = idom[a]
			}
			for d.Index[b] > d.Index[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range d.RPO[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = nil
	d.IDom = idom
}

// Reachable reports whether b is reachable from the entry.
func (d *DomTree) Reachable(b *Block) bool {
	_, ok := d.Index[b]
	return ok
}

// Dominates reports whether a dominates b (reflexive). Both blocks must
// be reachable; an unreachable b is dominated by nothing.
func (d *DomTree) Dominates(a, b *Block) bool {
	if !d.Reachable(b) {
		return false
	}
	for x := b; x != nil; x = d.IDom[x] {
		if x == a {
			return true
		}
	}
	return false
}
