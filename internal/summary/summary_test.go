package summary

import (
	"encoding/json"
	"strings"
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/ir"
)

// assemble builds a program or fails the test.
func assemble(t *testing.T, f func(a *bc.Assembler)) *bc.Program {
	t.Helper()
	a := bc.NewAssembler()
	f(a)
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func methodOf(t *testing.T, p *bc.Program, class, name string) *bc.Method {
	t.Helper()
	m := p.ClassByName(class).MethodByName(name)
	if m == nil {
		t.Fatalf("method %s.%s not found", class, name)
	}
	return m
}

// latticeProgram has one method per lattice level plus a transitive chain:
//
//	sink(b)        { S = b }                      // GlobalEscape
//	reads(b)       { return b.v }                 // ArgEscape
//	ignores(b, x)  { return x + x }               // NoEscape (b untouched)
//	pass(b, x)     { return ignores(b, x) }       // NoEscape transitively
//	deep(b, x)     { return pass(b, x) }          // NoEscape through 2 hops
func latticeProgram(t *testing.T) *bc.Program {
	return assemble(t, func(a *bc.Assembler) {
		box := a.Class("Box", "")
		vField := box.Field("v", bc.KindInt)
		sinkF := box.Static("S", bc.KindRef)

		c := a.Class("C", "")
		sink := c.Method("sink", []bc.Kind{bc.KindRef}, bc.KindVoid, true)
		sink.Load(0).PutStatic(sinkF).Return()

		reads := c.Method("reads", []bc.Kind{bc.KindRef}, bc.KindInt, true)
		reads.Load(0).GetField(vField).ReturnValue()

		ignores := c.Method("ignores", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
		ignores.Load(1).Load(1).Add().ReturnValue()

		pass := c.Method("pass", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
		pass.Load(0).Load(1).InvokeStatic(ignores.Ref()).ReturnValue()

		deep := c.Method("deep", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
		deep.Load(0).Load(1).InvokeStatic(pass.Ref()).ReturnValue()
	})
}

func TestLatticeLevels(t *testing.T) {
	p := latticeProgram(t)
	s := Compute(p, Options{})
	want := map[string][]Lattice{
		"C.sink":    {GlobalEscape},
		"C.reads":   {ArgEscape},
		"C.ignores": {NoEscape, ArgEscape},
		"C.pass":    {NoEscape, ArgEscape},
		"C.deep":    {NoEscape, ArgEscape},
	}
	for name, levels := range want {
		cls, meth, _ := strings.Cut(name, ".")
		sum := s.Of(methodOf(t, p, cls, meth))
		if sum == nil {
			t.Fatalf("%s: no summary", name)
		}
		for i, l := range levels {
			if sum.ParamEscape[i] != l {
				t.Errorf("%s param %d = %s, want %s", name, i, sum.ParamEscape[i], l)
			}
		}
	}
	st := s.Stats()
	if st.NoEscape != 3 || st.ArgEscape != 1 || st.GlobalEscape != 1 {
		t.Errorf("stats = %+v, want 3 no / 1 arg / 1 global ref params", st)
	}
}

func TestRecursionIsConservative(t *testing.T) {
	p := assemble(t, func(a *bc.Assembler) {
		a.Class("Box", "")
		c := a.Class("C", "")
		rec := c.Method("rec", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
		rec.Load(1).If(bc.CondLE, "base").
			Load(0).Load(1).Const(1).Sub().InvokeStatic(rec.Ref()).ReturnValue().
			Label("base").Const(0).ReturnValue()

		// mutual: a <-> b
		mb := c.Method("mb", []bc.Kind{bc.KindRef}, bc.KindVoid, true)
		ma := c.Method("ma", []bc.Kind{bc.KindRef}, bc.KindVoid, true)
		ma.Load(0).InvokeStatic(mb.Ref()).Return()
		mb.Load(0).InvokeStatic(ma.Ref()).Return()

		// caller of the cycle: its arg reaches unknown-effect code.
		call := c.Method("call", []bc.Kind{bc.KindRef}, bc.KindVoid, true)
		call.Load(0).Const(3).InvokeStatic(rec.Ref()).Pop().Return()
	})
	s := Compute(p, Options{})
	for _, name := range []string{"rec", "ma", "mb"} {
		sum := s.Of(methodOf(t, p, "C", name))
		if !sum.Conservative {
			t.Errorf("%s: cycle member not conservative", name)
		}
		if sum.ParamEscape[0] != GlobalEscape {
			t.Errorf("%s: cycle member param 0 = %s", name, sum.ParamEscape[0])
		}
	}
	if got := s.Of(methodOf(t, p, "C", "call")).ParamEscape[0]; got != GlobalEscape {
		t.Errorf("caller into cycle: param 0 = %s, want global", got)
	}
	if s.Stats().Cycles != 3 {
		t.Errorf("Cycles = %d, want 3", s.Stats().Cycles)
	}
}

func TestReceiverFlooredToArgEscape(t *testing.T) {
	p := assemble(t, func(a *bc.Assembler) {
		box := a.Class("Box", "")
		// An instance method that never touches `this` beyond dispatch.
		id := box.Method("id", []bc.Kind{bc.KindInt}, bc.KindInt, false)
		id.Load(1).ReturnValue()
	})
	s := Compute(p, Options{})
	sum := s.Of(methodOf(t, p, "Box", "id"))
	if sum.ParamEscape[0] != ArgEscape {
		t.Errorf("receiver = %s, want arg (dispatch observes it)", sum.ParamEscape[0])
	}
}

func TestReturnsFreshAndReturnsParam(t *testing.T) {
	p := assemble(t, func(a *bc.Assembler) {
		box := a.Class("Box", "")
		box.Field("v", bc.KindInt)
		c := a.Class("C", "")

		mk := c.Method("mk", nil, bc.KindRef, true)
		mk.New(box.Ref()).ReturnValue()

		mk2 := c.Method("mk2", nil, bc.KindRef, true)
		mk2.InvokeStatic(mk.Ref()).ReturnValue()

		echo := c.Method("echo", []bc.Kind{bc.KindRef}, bc.KindRef, true)
		echo.Load(0).ReturnValue()
	})
	s := Compute(p, Options{})
	if sum := s.Of(methodOf(t, p, "C", "mk")); !sum.ReturnsFresh {
		t.Error("mk: ReturnsFresh = false, want true")
	}
	if sum := s.Of(methodOf(t, p, "C", "mk2")); !sum.ReturnsFresh {
		t.Error("mk2: ReturnsFresh = false through fresh-returning callee")
	}
	sum := s.Of(methodOf(t, p, "C", "echo"))
	if sum.ReturnsFresh {
		t.Error("echo: ReturnsFresh = true for returned param")
	}
	if sum.ReturnsParam != 0 {
		t.Errorf("echo: ReturnsParam = %d, want 0", sum.ReturnsParam)
	}
	if sum.ParamEscape[0] != ArgEscape {
		t.Errorf("echo: returned param = %s, want arg", sum.ParamEscape[0])
	}
}

// guardedProgram: the escaping use of b is behind an entry guard on flag:
//
//	guarded(b, flag) { if (flag != 0) { S = b }  return flag }
func guardedProgram(t *testing.T) *bc.Program {
	return assemble(t, func(a *bc.Assembler) {
		box := a.Class("Box", "")
		sinkF := box.Static("S", bc.KindRef)
		c := a.Class("C", "")
		g := c.Method("guarded", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
		g.Load(1).If(bc.CondEQ, "skip").
			Load(0).PutStatic(sinkF).
			Label("skip").Load(1).ReturnValue()

		// Callers passing constants: flag=0 kills the escaping arm,
		// flag=1 keeps it.
		dead := c.Method("deadArm", []bc.Kind{bc.KindRef}, bc.KindInt, true)
		dead.Load(0).Const(0).InvokeStatic(g.Ref()).ReturnValue()
		live := c.Method("liveArm", []bc.Kind{bc.KindRef}, bc.KindInt, true)
		live.Load(0).Const(1).InvokeStatic(g.Ref()).ReturnValue()
	})
}

func TestPredicateRefinement(t *testing.T) {
	p := guardedProgram(t)
	s := Compute(p, Options{})
	sum := s.Of(methodOf(t, p, "C", "guarded"))
	if sum.ParamEscape[0] != GlobalEscape {
		t.Fatalf("guarded param 0 = %s, want global (unguarded join)", sum.ParamEscape[0])
	}
	if len(sum.Preds) != 1 {
		t.Fatalf("guarded preds = %v, want exactly 1", sum.Preds)
	}
	pr := sum.Preds[0]
	if pr.Param != 0 || pr.IntParam != 1 || pr.Relaxed != NoEscape {
		t.Errorf("pred = %+v, want param 0 guarded by int param 1 relaxing to no-escape", pr)
	}
	// The constant-kills-escaping-arm refinement propagates to callers.
	if got := s.Of(methodOf(t, p, "C", "deadArm")).ParamEscape[0]; got != NoEscape {
		t.Errorf("deadArm param 0 = %s, want no (escaping arm statically dead)", got)
	}
	if got := s.Of(methodOf(t, p, "C", "liveArm")).ParamEscape[0]; got != GlobalEscape {
		t.Errorf("liveArm param 0 = %s, want global", got)
	}
}

func TestArgSafeOnInvokeNode(t *testing.T) {
	p := guardedProgram(t)
	s := Compute(p, Options{})
	g, err := build.Build(methodOf(t, p, "C", "deadArm"))
	if err != nil {
		t.Fatal(err)
	}
	var call *ir.Node
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpInvoke {
			call = n
		}
	})
	if call == nil {
		t.Fatal("no invoke in deadArm")
	}
	safe := s.ArgSafe(call)
	if safe == nil {
		t.Fatal("ArgSafe = nil for resolvable static call")
	}
	if !safe[0] || safe[1] {
		t.Errorf("ArgSafe = %v, want [true false] (ref safe via dead arm, int observed)", safe)
	}
}

func TestVirtualDispatchJoinsAllTargets(t *testing.T) {
	p := assemble(t, func(a *bc.Assembler) {
		box := a.Class("Box", "")
		sinkF := box.Static("S", bc.KindRef)

		base := a.Class("Base", "")
		use := base.Method("use", []bc.Kind{bc.KindRef}, bc.KindVoid, false)
		use.Return()
		sub := a.Class("Sub", "Base")
		over := sub.Method("use", []bc.Kind{bc.KindRef}, bc.KindVoid, false)
		over.Load(1).PutStatic(sinkF).Return()

		c := a.Class("C", "")
		call := c.Method("call", []bc.Kind{bc.KindRef, bc.KindRef}, bc.KindVoid, true)
		call.Load(0).Load(1).InvokeVirtual(use.Ref()).Return()
	})
	s := Compute(p, Options{})
	// Base.use never observes its arg; Sub.use globally escapes it. The
	// virtual site must join over both.
	if got := s.Of(methodOf(t, p, "Base", "use")).ParamEscape[1]; got != NoEscape {
		t.Errorf("Base.use arg = %s, want no", got)
	}
	if got := s.Of(methodOf(t, p, "Sub", "use")).ParamEscape[1]; got != GlobalEscape {
		t.Errorf("Sub.use arg = %s, want global", got)
	}
	sum := s.Of(methodOf(t, p, "C", "call"))
	if sum.ParamEscape[1] != GlobalEscape {
		t.Errorf("virtual call arg = %s, want global (CHA join)", sum.ParamEscape[1])
	}
}

func TestMonitorAndThrowContributions(t *testing.T) {
	p := assemble(t, func(a *bc.Assembler) {
		a.Class("Box", "")
		c := a.Class("C", "")
		lock := c.Method("lock", []bc.Kind{bc.KindRef}, bc.KindVoid, true)
		lock.Load(0).MonitorEnter().Load(0).MonitorExit().Return()
		boom := c.Method("boom", []bc.Kind{bc.KindRef}, bc.KindVoid, true)
		boom.Load(0).Throw()
	})
	s := Compute(p, Options{})
	if got := s.Of(methodOf(t, p, "C", "lock")).ParamEscape[0]; got != ArgEscape {
		t.Errorf("locked param = %s, want arg (observed, not global)", got)
	}
	if got := s.Of(methodOf(t, p, "C", "boom")).ParamEscape[0]; got != GlobalEscape {
		t.Errorf("thrown param = %s, want global", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := latticeProgram(t)
	s := Compute(p, Options{})
	data, err := s.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(data, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Methods {
		a, b := s.Of(m), got.Of(m)
		if len(a.ParamEscape) != len(b.ParamEscape) {
			t.Fatalf("%s: arity drift", m.QualifiedName())
		}
		for i := range a.ParamEscape {
			if a.ParamEscape[i] != b.ParamEscape[i] {
				t.Errorf("%s param %d: %s != %s", m.QualifiedName(), i, a.ParamEscape[i], b.ParamEscape[i])
			}
		}
		if a.ReturnsFresh != b.ReturnsFresh || a.ReturnsParam != b.ReturnsParam {
			t.Errorf("%s: returns drift", m.QualifiedName())
		}
	}
	if s.Stats() != got.Stats() {
		t.Errorf("stats drift: %+v != %+v", s.Stats(), got.Stats())
	}
}

func TestDecodeRejectsTamperedPayloads(t *testing.T) {
	p := latticeProgram(t)
	data, err := Compute(p, Options{}).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(name string, mut func(m map[string]any)) {
		t.Helper()
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		mut(doc)
		bad, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeJSON(bad, p); err == nil {
			t.Errorf("%s: tampered payload accepted", name)
		}
	}
	tamper("version", func(m map[string]any) { m["version"] = float64(Version + 1) })
	tamper("program-fp", func(m map[string]any) { m["program_fp"] = float64(12345) })
	tamper("truncated", func(m map[string]any) {
		ms := m["methods"].([]any)
		m["methods"] = ms[:len(ms)-1]
	})
	tamper("method-fp", func(m map[string]any) {
		e := m["methods"].([]any)[0].(map[string]any)
		e["method_fp"] = float64(1)
	})
	tamper("level-out-of-range", func(m map[string]any) {
		e := m["methods"].([]any)[0].(map[string]any)
		sum := e["summary"].(map[string]any)
		levels := sum["param_escape"].([]any)
		if len(levels) > 0 {
			levels[0] = float64(9)
		} else {
			sum["param_escape"] = []any{float64(9)}
		}
	})
	tamper("duplicate-id", func(m map[string]any) {
		ms := m["methods"].([]any)
		a := ms[0].(map[string]any)
		b := ms[1].(map[string]any)
		a["id"] = b["id"]
		a["method_fp"] = b["method_fp"]
	})
	// A different program (extra method) must reject the whole set.
	p2 := assemble(t, func(a *bc.Assembler) {
		box := a.Class("Box", "")
		box.Field("v", bc.KindInt)
		c := a.Class("C", "")
		c.Method("other", nil, bc.KindInt, true).Const(1).ReturnValue()
	})
	if _, err := DecodeJSON(data, p2); err == nil {
		t.Error("set for different program accepted")
	}
}

func TestTableRendersEveryMethod(t *testing.T) {
	p := latticeProgram(t)
	s := Compute(p, Options{})
	tab := s.Table()
	for _, name := range []string{"C.sink", "C.reads", "C.ignores", "C.pass", "C.deep"} {
		if !strings.Contains(tab, name) {
			t.Errorf("table missing %s:\n%s", name, tab)
		}
	}
	if !strings.Contains(tab, "no-escape") {
		t.Errorf("table missing stats footer:\n%s", tab)
	}
}
