// Package summary computes inter-procedural escape summaries: a
// whole-program, bottom-up static analysis over the call graph that
// records, per method, how each parameter can escape. The paper's Partial
// Escape Analysis is intra-procedural — after inlining, every surviving
// OpInvoke is a black hole that forces its arguments to exist — and this
// package is the repo's answer to that gap (ROADMAP item 4), in the shape
// SkipFlow (arXiv 2501.19150) and HotSpot's BCEscapeAnalyzer use: method
// escape summaries plus predicate edges over primitive parameters.
//
// The lattice is NoEscape < ArgEscape < GlobalEscape:
//
//   - NoEscape means the callee provably never *observes* the parameter:
//     its only uses are phi/local shuffles, being forwarded to another
//     callee's NoEscape position, or being dropped. This is deliberately
//     stronger than Kotzmann's NoEscape ("not reachable after return") —
//     callees here really execute (they are not always inlined away), so
//     the caller may keep a virtual object virtual across the call and
//     pass null in its place only if no execution path can tell the
//     difference. Field loads, stores, identity comparisons, monitors,
//     returns, and dispatch all count as observation.
//   - ArgEscape means the parameter is observed locally (loaded from,
//     locked, compared, returned) but never becomes globally reachable.
//     Callers must materialize, but attribution can still distinguish
//     these from global escapes.
//   - GlobalEscape means the parameter may be stored to a static, thrown,
//     printed, or passed into unknown code.
//
// Summaries are computed bottom-up over the SCC condensation of the call
// graph, so straight-line call chains propagate NoEscape transitively.
// Recursion-cycle members, unknown dispatch, and methods whose IR cannot
// be built get conservative all-GlobalEscape summaries. Virtual call
// edges join over every class-hierarchy-possible target.
//
// A SkipFlow-lite predicate pass refines summaries whose escaping uses
// are all guarded by an entry-block test of a primitive parameter against
// a constant: at call sites passing a constant that kills the escaping
// arm, the effective level drops to the unguarded join. This is the
// "never-taken escape branch" pruning of the SkipFlow paper, restricted
// to the single-guard shape that needs no value-range machinery.
//
// Sets serialize to JSON for the broker's persistent store, keyed by the
// program's content fingerprint with every entry re-validated against the
// loading program (see DecodeJSON) — the same trust-boundary stance the
// artifact store takes.
package summary

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/ir"
	"pea/internal/obs"
)

// Lattice is a parameter escape level. The zero value is NoEscape; join
// is max.
type Lattice uint8

const (
	// NoEscape: the callee never observes the parameter on any path.
	NoEscape Lattice = iota
	// ArgEscape: observed locally (loads, locks, compares, returns) but
	// never globally reachable.
	ArgEscape
	// GlobalEscape: may become globally reachable or reach unknown code.
	GlobalEscape
)

// String returns the short report spelling of the level.
func (l Lattice) String() string {
	switch l {
	case NoEscape:
		return "no"
	case ArgEscape:
		return "arg"
	case GlobalEscape:
		return "global"
	default:
		return fmt.Sprintf("Lattice(%d)", uint8(l))
	}
}

// MarshalJSON emits the level as a plain number. Without this, Go would
// serialize []Lattice (a uint8 slice) as base64, hiding the levels from
// the store's JSON envelopes.
func (l Lattice) MarshalJSON() ([]byte, error) {
	return json.Marshal(uint8(l))
}

// UnmarshalJSON accepts any numeric level; DecodeJSON range-checks it.
func (l *Lattice) UnmarshalJSON(data []byte) error {
	var v uint8
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*l = Lattice(v)
	return nil
}

func join(a, b Lattice) Lattice {
	if b > a {
		return b
	}
	return a
}

// Pred is a SkipFlow-lite predicate edge: the escaping uses of ref
// parameter Param all sit on one arm of the method's entry-block branch
// on primitive parameter IntParam compared against Const. At a call site
// where the IntParam argument is a compile-time constant that makes the
// escaping arm dead, Param's effective level drops to Relaxed.
type Pred struct {
	// Param is the ref parameter position this predicate refines.
	Param int `json:"param"`
	// IntParam is the primitive parameter position the entry guard tests.
	IntParam int `json:"int_param"`
	// Cond and Const describe the guard: cond(IntParam, Const) when
	// ParamOnLeft, cond(Const, IntParam) otherwise.
	Cond        bc.Cond `json:"cond"`
	Const       int64   `json:"const"`
	ParamOnLeft bool    `json:"param_on_left"`
	// WhenTrue: the escaping uses are dominated by the guard's true arm.
	WhenTrue bool `json:"when_true"`
	// Relaxed is Param's level when the escaping arm is statically dead.
	Relaxed Lattice `json:"relaxed"`
}

// Summary is one method's escape summary.
type Summary struct {
	// ParamEscape has one level per argument position (the receiver is
	// position 0 of instance methods, matching ir.OpInvoke input order).
	// Primitive parameters are recorded as ArgEscape (always observed,
	// never substitutable).
	ParamEscape []Lattice `json:"param_escape"`
	// ReturnsFresh: every return value is an allocation made inside the
	// method (directly or via callees that return fresh). An
	// inlining-priority signal, never a license to skip escapes.
	ReturnsFresh bool `json:"returns_fresh,omitempty"`
	// ReturnsParam is the parameter position every return returns, or -1.
	ReturnsParam int `json:"returns_param"`
	// Preds are the predicate refinements (see Pred).
	Preds []Pred `json:"preds,omitempty"`
	// Conservative marks recursion-cycle members and methods whose IR
	// could not be built: every level is GlobalEscape by construction.
	Conservative bool `json:"conservative,omitempty"`
}

// Stats describes one computed set.
type Stats struct {
	Methods      int // methods summarized
	Cycles       int // methods given conservative summaries (recursion)
	BuildFailed  int // methods whose IR build failed (conservative)
	NoEscape     int // ref parameters proven NoEscape
	ArgEscape    int // ref parameters at ArgEscape
	GlobalEscape int // ref parameters at GlobalEscape
	Preds        int // predicate refinements recorded
}

// Options configures Compute.
type Options struct {
	// Sink, when non-nil, receives one summary event describing the
	// computed set.
	Sink *obs.Sink
	// BuildGraph overrides the per-method IR builder (tests). Defaults
	// to build.Build.
	BuildGraph func(m *bc.Method) (*ir.Graph, error)
}

// Set holds the summaries of one program, indexed by dense method ID.
// Sets are immutable after Compute/DecodeJSON and safe for concurrent
// readers; they may be shared across independently linked programs with
// equal content fingerprints (dense IDs are a function of content).
type Set struct {
	prog  *bc.Program
	sums  []*Summary
	stats Stats
}

// Compute analyzes p and returns its summary set. It never fails:
// anything unanalyzable is summarized conservatively.
func Compute(p *bc.Program, opts Options) *Set {
	bg := opts.BuildGraph
	if bg == nil {
		bg = build.Build
	}
	s := &Set{prog: p, sums: make([]*Summary, len(p.Methods))}

	callees := make([][]*bc.Method, len(p.Methods))
	for _, m := range p.Methods {
		callees[m.ID] = calleesOf(p, m)
	}
	for _, scc := range condense(p, callees) {
		cyclic := len(scc) > 1 || selfEdge(scc[0], callees)
		for _, m := range scc {
			if cyclic {
				s.sums[m.ID] = conservative(m)
				s.stats.Cycles++
				continue
			}
			sum, buildOK := s.analyze(m, bg)
			if !buildOK {
				s.stats.BuildFailed++
			}
			s.sums[m.ID] = sum
		}
	}
	s.stats.Methods = len(p.Methods)
	for _, m := range p.Methods {
		sum := s.sums[m.ID]
		s.stats.Preds += len(sum.Preds)
		for i, l := range sum.ParamEscape {
			if argKind(m, i) != bc.KindRef {
				continue
			}
			switch l {
			case NoEscape:
				s.stats.NoEscape++
			case ArgEscape:
				s.stats.ArgEscape++
			case GlobalEscape:
				s.stats.GlobalEscape++
			}
		}
	}
	if opts.Sink != nil {
		opts.Sink.SummaryReady(s.stats.Methods, s.stats.NoEscape, s.stats.Preds, "computed")
	}
	return s
}

// Of returns m's summary, or nil for a method from a different program.
func (s *Set) Of(m *bc.Method) *Summary {
	if s == nil || m == nil || m.ID < 0 || m.ID >= len(s.sums) {
		return nil
	}
	return s.sums[m.ID]
}

// Stats returns the set's aggregate statistics.
func (s *Set) Stats() Stats { return s.stats }

// conservative is the all-GlobalEscape summary.
func conservative(m *bc.Method) *Summary {
	sum := &Summary{ParamEscape: make([]Lattice, m.NumArgs()), ReturnsParam: -1, Conservative: true}
	for i := range sum.ParamEscape {
		sum.ParamEscape[i] = GlobalEscape
	}
	return sum
}

// argKind returns the kind of argument position i (receiver = 0 for
// instance methods).
func argKind(m *bc.Method, i int) bc.Kind {
	if !m.Static {
		if i == 0 {
			return bc.KindRef
		}
		i--
	}
	if i < 0 || i >= len(m.Params) {
		return bc.KindVoid
	}
	return m.Params[i]
}

// calleesOf returns every method m may invoke: exact targets of static
// and direct calls, and all class-hierarchy-possible implementations of
// virtual calls. A nil entry marks an unresolvable site (treated as an
// unknown-code edge by the analysis).
func calleesOf(p *bc.Program, m *bc.Method) []*bc.Method {
	var out []*bc.Method
	seen := make(map[*bc.Method]bool)
	add := func(t *bc.Method) {
		if t != nil && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for i := range m.Code {
		in := &m.Code[i]
		if !in.Op.IsInvoke() {
			continue
		}
		if in.Op == bc.OpInvokeVirtual {
			for _, t := range virtualTargets(p, in.Method) {
				add(t)
			}
			continue
		}
		add(in.Method)
	}
	return out
}

// virtualTargets returns every implementation a virtual call to decl can
// dispatch to under class hierarchy analysis.
func virtualTargets(p *bc.Program, decl *bc.Method) []*bc.Method {
	if decl == nil {
		return nil
	}
	root := decl.Class
	for root.Super != nil && decl.VSlot < len(root.Super.VTable) {
		root = root.Super
	}
	var out []*bc.Method
	seen := make(map[*bc.Method]bool)
	for _, c := range p.Classes {
		if !c.IsSubclassOf(root) || decl.VSlot >= len(c.VTable) {
			continue
		}
		impl := c.VTable[decl.VSlot]
		if impl != nil && !seen[impl] {
			seen[impl] = true
			out = append(out, impl)
		}
	}
	return out
}

// selfEdge reports whether m calls itself.
func selfEdge(m *bc.Method, callees [][]*bc.Method) bool {
	for _, t := range callees[m.ID] {
		if t == m {
			return true
		}
	}
	return false
}

// condense runs Tarjan's SCC algorithm over the call graph and returns
// the components in reverse topological order (callees before callers),
// which is exactly bottom-up summary order: when a component is emitted,
// every component it calls into has already been emitted.
func condense(p *bc.Program, callees [][]*bc.Method) [][]*bc.Method {
	n := len(p.Methods)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []*bc.Method
	var sccs [][]*bc.Method
	next := 0

	// Iterative Tarjan: generated programs can have deep call chains.
	type frame struct {
		m  *bc.Method
		ci int
	}
	for _, root := range p.Methods {
		if index[root.ID] >= 0 {
			continue
		}
		work := []frame{{m: root}}
		index[root.ID], low[root.ID] = next, next
		next++
		stack = append(stack, root)
		onStack[root.ID] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ci < len(callees[f.m.ID]) {
				t := callees[f.m.ID][f.ci]
				f.ci++
				if index[t.ID] < 0 {
					index[t.ID], low[t.ID] = next, next
					next++
					stack = append(stack, t)
					onStack[t.ID] = true
					work = append(work, frame{m: t})
				} else if onStack[t.ID] && index[t.ID] < low[f.m.ID] {
					low[f.m.ID] = index[t.ID]
				}
				continue
			}
			m := f.m
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].m
				if low[m.ID] < low[parent.ID] {
					low[parent.ID] = low[m.ID]
				}
			}
			if low[m.ID] == index[m.ID] {
				var scc []*bc.Method
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top.ID] = false
					scc = append(scc, top)
					if top == m {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// contrib is one escape contribution of a parameter: a level raised at a
// specific block (the observing operation's block), used both for the
// final join and for the predicate pass.
type contrib struct {
	lvl Lattice
	blk *ir.Block
}

// analyze computes one method's summary from its freshly built IR (no
// optimization passes run first: the unoptimized SSA graph is the
// bytecode's conservative truth — nothing has been folded away that the
// interpreter would still execute). buildOK is false when the IR build
// failed and the summary is conservative.
func (s *Set) analyze(m *bc.Method, bg func(*bc.Method) (*ir.Graph, error)) (*Summary, bool) {
	g, err := bg(m)
	if err != nil {
		return conservative(m), false
	}

	uses := make(map[*ir.Node][]*ir.Node)
	record := func(u *ir.Node) {
		for _, in := range u.Inputs {
			if in != nil {
				uses[in] = append(uses[in], u)
			}
		}
	}
	params := make([]*ir.Node, m.NumArgs())
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		record(n)
		if n.Op == ir.OpParam && n.AuxInt >= 0 && int(n.AuxInt) < len(params) {
			params[n.AuxInt] = n
		}
	})

	sum := &Summary{ParamEscape: make([]Lattice, m.NumArgs()), ReturnsParam: -1}
	var contribsPer [][]contrib
	for i := range sum.ParamEscape {
		if argKind(m, i) != bc.KindRef {
			// Primitive parameters are always observed; they are never
			// substitution candidates and carry no ref-escape meaning.
			sum.ParamEscape[i] = ArgEscape
			contribsPer = append(contribsPer, nil)
			continue
		}
		var cs []contrib
		if !m.Static && i == 0 {
			// The receiver is observed by dispatch and the implicit
			// null check before any instance method runs.
			cs = append(cs, contrib{ArgEscape, g.Entry()})
		}
		if p := params[i]; p != nil {
			cs = append(cs, s.paramContribs(p, uses)...)
		}
		lvl := NoEscape
		for _, c := range cs {
			lvl = join(lvl, c.lvl)
		}
		sum.ParamEscape[i] = lvl
		contribsPer = append(contribsPer, cs)
	}

	s.returns(g, params, sum)
	s.predicates(m, g, contribsPer, sum)
	return sum, true
}

// paramContribs walks the use chains of one ref parameter and returns
// every escape contribution. Phis are transparent aliases: a use of a phi
// that may carry the parameter is a use of the parameter.
func (s *Set) paramContribs(p *ir.Node, uses map[*ir.Node][]*ir.Node) []contrib {
	var out []contrib
	seen := map[*ir.Node]bool{p: true}
	var walk func(v *ir.Node)
	walk = func(v *ir.Node) {
		for _, u := range uses[v] {
			switch u.Op {
			case ir.OpPhi:
				if !seen[u] {
					seen[u] = true
					walk(u)
				}

			case ir.OpInvoke:
				for i, in := range u.Inputs {
					if in != v {
						continue
					}
					out = append(out, contrib{s.calleeParamLevel(u, i), u.Block})
				}

			case ir.OpReturn:
				// Returned to the caller: observed there, but not
				// globally reachable by this method's doing.
				out = append(out, contrib{ArgEscape, u.Block})

			case ir.OpThrow, ir.OpStoreStatic, ir.OpPrint:
				// Thrown, stored to a global, or handed to a native
				// sink: globally reachable / unknown code.
				out = append(out, contrib{GlobalEscape, u.Block})

			case ir.OpStoreField:
				if u.Inputs[1] == v {
					// Stored into another object: conservatively
					// global (the target's reachability is unknown).
					out = append(out, contrib{GlobalEscape, u.Block})
				}
				if u.Inputs[0] == v {
					out = append(out, contrib{ArgEscape, u.Block})
				}

			case ir.OpStoreIndexed:
				if u.Inputs[2] == v {
					out = append(out, contrib{GlobalEscape, u.Block})
				}
				if u.Inputs[0] == v {
					out = append(out, contrib{ArgEscape, u.Block})
				}

			case ir.OpLoadField, ir.OpLoadIndexed, ir.OpArrayLength,
				ir.OpMonitorEnter, ir.OpMonitorExit,
				ir.OpRefEq, ir.OpInstanceOf:
				// The object is observed (dereferenced, locked, or its
				// identity/type inspected) but stays local.
				out = append(out, contrib{ArgEscape, u.Block})

			case ir.OpArith, ir.OpNeg, ir.OpCmp, ir.OpIf, ir.OpNewArray:
				// Integer-typed consumers; a ref input would be
				// ill-typed IR. Observed at worst.
				out = append(out, contrib{ArgEscape, u.Block})

			case ir.OpParam, ir.OpConst, ir.OpConstNull, ir.OpLoadStatic,
				ir.OpNew, ir.OpRand, ir.OpGoto:
				// No inputs: cannot appear as users. Conservative if IR
				// shape ever changes.
				out = append(out, contrib{GlobalEscape, u.Block})

			case ir.OpOnException, ir.OpExceptionObject, ir.OpUnwind:
				// Exception plumbing: OnException's sole input is the
				// guarded trapping node (a control dependence, not a
				// value flow) and the other two take no inputs, so a
				// ref parameter can never reach here. Conservative if
				// the IR shape ever changes.
				out = append(out, contrib{GlobalEscape, u.Block})

			case ir.OpVirtualObject, ir.OpMaterialize, ir.OpDeopt, ir.OpInvalid:
				// PEA-introduced nodes never occur in freshly built
				// graphs; treat any appearance as unknown code.
				out = append(out, contrib{GlobalEscape, u.Block})
			}
		}
	}
	walk(p)
	return out
}

// calleeParamLevel joins argument position i's level over every possible
// target of call, applying the targets' predicate refinements when the
// call passes constants. Unknown dispatch is GlobalEscape.
func (s *Set) calleeParamLevel(call *ir.Node, i int) Lattice {
	targets, ok := s.callTargets(call)
	if !ok {
		return GlobalEscape
	}
	lvl := NoEscape
	for _, t := range targets {
		sum := s.Of(t)
		if sum == nil || len(sum.ParamEscape) != len(call.Inputs) {
			return GlobalEscape
		}
		lvl = join(lvl, effectiveLevel(sum, i, call))
	}
	return lvl
}

// callTargets resolves an ir.OpInvoke to its possible implementations.
// ok is false when the site is unresolvable (treat as unknown code).
func (s *Set) callTargets(call *ir.Node) ([]*bc.Method, bool) {
	decl := call.Method
	if decl == nil {
		return nil, false
	}
	// oplint:ignore — Aux2 of an OpInvoke is one of the three invoke
	// kinds by construction; anything else is unresolvable.
	switch call.Aux2 {
	case bc.OpInvokeStatic, bc.OpInvokeDirect:
		return []*bc.Method{decl}, true
	case bc.OpInvokeVirtual:
		if recv := call.Inputs[0]; recv != nil && recv.Op == ir.OpNew && recv.Class != nil &&
			decl.VSlot < len(recv.Class.VTable) {
			return []*bc.Method{recv.Class.VTable[decl.VSlot]}, true
		}
		ts := virtualTargets(s.prog, decl)
		return ts, len(ts) > 0
	}
	return nil, false
}

// effectiveLevel is sum.ParamEscape[i] refined by any predicate whose
// guarded (escaping) arm is statically dead at this call site because the
// tested primitive argument is a compile-time constant.
func effectiveLevel(sum *Summary, i int, call *ir.Node) Lattice {
	lvl := sum.ParamEscape[i]
	for _, p := range sum.Preds {
		if p.Param != i || p.IntParam >= len(call.Inputs) {
			continue
		}
		arg := call.Inputs[p.IntParam]
		if arg == nil || !arg.IsConst() {
			continue
		}
		var taken bool
		if p.ParamOnLeft {
			taken = evalCond(p.Cond, arg.AuxInt, p.Const)
		} else {
			taken = evalCond(p.Cond, p.Const, arg.AuxInt)
		}
		if taken != p.WhenTrue && p.Relaxed < lvl {
			lvl = p.Relaxed
		}
	}
	return lvl
}

// evalCond evaluates an integer comparison.
func evalCond(c bc.Cond, a, b int64) bool {
	switch c {
	case bc.CondEQ:
		return a == b
	case bc.CondNE:
		return a != b
	case bc.CondLT:
		return a < b
	case bc.CondLE:
		return a <= b
	case bc.CondGT:
		return a > b
	case bc.CondGE:
		return a >= b
	default:
		return true // unknown condition: never prove an arm dead
	}
}

// returns computes ReturnsFresh and ReturnsParam from the graph's return
// terminators.
func (s *Set) returns(g *ir.Graph, params []*ir.Node, sum *Summary) {
	if g.Method == nil || g.Method.Ret != bc.KindRef {
		return
	}
	fresh := true
	retParam := -2 // -2: unset, -1: mixed
	any := false
	for _, b := range g.Blocks {
		t := b.Term
		if t == nil || t.Op != ir.OpReturn || len(t.Inputs) == 0 {
			continue
		}
		any = true
		v := t.Inputs[0]
		if !s.isFresh(v, make(map[*ir.Node]bool)) {
			fresh = false
		}
		pi := -1
		for i, p := range params {
			if p != nil && p == v {
				pi = i
				break
			}
		}
		if retParam == -2 {
			retParam = pi
		} else if retParam != pi {
			retParam = -1
		}
	}
	if !any {
		return
	}
	sum.ReturnsFresh = fresh
	if retParam >= 0 {
		sum.ReturnsParam = retParam
	}
}

// isFresh reports whether v is always an object allocated in this method
// (directly, via phis of fresh values, or via callees that return fresh).
func (s *Set) isFresh(v *ir.Node, seen map[*ir.Node]bool) bool {
	if v == nil || seen[v] {
		return v != nil // a phi cycle of allocations stays fresh
	}
	seen[v] = true
	// oplint:ignore — predicate over the few value-producing ops that
	// yield provably fresh objects; everything else answers false.
	switch v.Op {
	case ir.OpNew, ir.OpNewArray:
		return true
	case ir.OpPhi:
		for _, in := range v.Inputs {
			if !s.isFresh(in, seen) {
				return false
			}
		}
		return len(v.Inputs) > 0
	case ir.OpInvoke:
		targets, ok := s.callTargets(v)
		if !ok {
			return false
		}
		for _, t := range targets {
			sum := s.Of(t)
			if sum == nil || !sum.ReturnsFresh {
				return false
			}
		}
		return len(targets) > 0
	}
	return false
}

// predicates runs the SkipFlow-lite refinement: when the method's entry
// block ends in a branch on (primitive parameter vs constant) and every
// contribution that raises a ref parameter above some level sits in
// blocks dominated by one arm, record a Pred relaxing the parameter to
// the other arm's join.
func (s *Set) predicates(m *bc.Method, g *ir.Graph, contribsPer [][]contrib, sum *Summary) {
	entry := g.Entry()
	t := entry.Term
	if t == nil || t.Op != ir.OpIf || len(entry.Succs) != 2 || entry.Succs[0] == entry.Succs[1] {
		return
	}
	cond := t.Inputs[0]
	if cond == nil || cond.Op != ir.OpCmp {
		return
	}
	x, y := cond.Inputs[0], cond.Inputs[1]
	var intParamNode, constNode *ir.Node
	paramOnLeft := false
	switch {
	case x.Op == ir.OpParam && x.Kind == bc.KindInt && y.IsConst():
		intParamNode, constNode, paramOnLeft = x, y, true
	case y.Op == ir.OpParam && y.Kind == bc.KindInt && x.IsConst():
		intParamNode, constNode, paramOnLeft = y, x, false
	default:
		return
	}
	intParam := int(intParamNode.AuxInt)
	if intParam < 0 || intParam >= len(sum.ParamEscape) || argKind(m, intParam) != bc.KindInt {
		return
	}

	dom := ir.NewDomTree(g)
	for pi, cs := range contribsPer {
		full := sum.ParamEscape[pi]
		if argKind(m, pi) != bc.KindRef || full == NoEscape || len(cs) == 0 {
			continue
		}
		for arm := 0; arm < 2; arm++ {
			armBlk := entry.Succs[arm]
			relaxed := NoEscape
			for _, c := range cs {
				if c.blk != nil && dom.Dominates(armBlk, c.blk) {
					continue
				}
				relaxed = join(relaxed, c.lvl)
			}
			if relaxed < full {
				sum.Preds = append(sum.Preds, Pred{
					Param:       pi,
					IntParam:    intParam,
					Cond:        cond.Cond,
					Const:       constNode.AuxInt,
					ParamOnLeft: paramOnLeft,
					WhenTrue:    arm == 0,
					Relaxed:     relaxed,
				})
				break // one predicate per parameter
			}
		}
	}
}

// ArgSafe reports, for an ir.OpInvoke node, which argument positions every
// possible callee provably never observes: safe[i] licenses the caller to
// keep a virtual object virtual across the call and pass null in the
// argument slot. nil means no information (unknown dispatch, foreign
// method, arity mismatch) — callers fall back to conservative escapes.
// The signature matches pea.Config.CalleeNoEscape.
func (s *Set) ArgSafe(call *ir.Node) []bool {
	if s == nil || call == nil || call.Op != ir.OpInvoke {
		return nil
	}
	targets, ok := s.callTargets(call)
	if !ok || len(targets) == 0 {
		return nil
	}
	safe := make([]bool, len(call.Inputs))
	for i := range safe {
		lvl := NoEscape
		for _, t := range targets {
			sum := s.Of(t)
			if sum == nil || len(sum.ParamEscape) != len(call.Inputs) {
				return nil
			}
			lvl = join(lvl, effectiveLevel(sum, i, call))
		}
		safe[i] = lvl == NoEscape
	}
	return safe
}

// Table renders the set as a fixed-width report (peavm -summaries).
func (s *Set) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %-20s %5s %5s  %s\n", "METHOD", "PARAMS", "FRESH", "RETP", "PREDS")
	names := make([]string, 0, len(s.prog.Methods))
	byName := make(map[string]*bc.Method, len(s.prog.Methods))
	for _, m := range s.prog.Methods {
		n := m.QualifiedName()
		names = append(names, n)
		byName[n] = m
	}
	sort.Strings(names)
	for _, n := range names {
		m := byName[n]
		sum := s.sums[m.ID]
		levels := make([]string, len(sum.ParamEscape))
		for i, l := range sum.ParamEscape {
			levels[i] = l.String()
		}
		preds := make([]string, 0, len(sum.Preds))
		for _, p := range sum.Preds {
			arm := "F"
			if p.WhenTrue {
				arm = "T"
			}
			preds = append(preds, fmt.Sprintf("p%d@(p%d%s%d:%s)->%s",
				p.Param, p.IntParam, p.Cond, p.Const, arm, p.Relaxed))
		}
		fresh := ""
		if sum.ReturnsFresh {
			fresh = "yes"
		}
		if sum.Conservative {
			fresh = "rec"
		}
		fmt.Fprintf(&b, "%-32s %-20s %5s %5d  %s\n",
			n, strings.Join(levels, ","), fresh, sum.ReturnsParam, strings.Join(preds, " "))
	}
	st := s.stats
	fmt.Fprintf(&b, "ref params: %d no-escape, %d arg-escape, %d global; %d preds; %d conservative\n",
		st.NoEscape, st.ArgEscape, st.GlobalEscape, st.Preds, st.Cycles+st.BuildFailed)
	return b.String()
}

// Version is the serialized summary-set format version.
const Version = 1

// setJSON is the on-disk form: every entry carries the method fingerprint
// it was computed from, so loads re-validate entry-by-entry.
type setJSON struct {
	Version   int          `json:"version"`
	ProgramFP uint64       `json:"program_fp"`
	Methods   []methodJSON `json:"methods"`
}

type methodJSON struct {
	ID       int     `json:"id"`
	MethodFP uint64  `json:"method_fp"`
	Name     string  `json:"name"`
	Summary  Summary `json:"summary"`
}

// EncodeJSON serializes the set for the persistent store.
func (s *Set) EncodeJSON() ([]byte, error) {
	out := setJSON{Version: Version, ProgramFP: s.prog.Fingerprint()}
	for _, m := range s.prog.Methods {
		out.Methods = append(out.Methods, methodJSON{
			ID:       m.ID,
			MethodFP: s.prog.MethodFingerprint(m),
			Name:     m.QualifiedName(),
			Summary:  *s.sums[m.ID],
		})
	}
	return json.Marshal(&out)
}

// DecodeJSON deserializes a set against p, treating the payload as
// untrusted input: the version and program fingerprint must match, every
// method of p must be covered exactly once under its current fingerprint,
// every lattice value must be in range with the arity of the method it
// claims to describe, and predicates must name in-range parameters of the
// right kinds with a Relaxed level strictly below the full one. Any
// violation fails the whole load — a summary is a license to delete
// escapes, so a corrupt one must never be half-trusted.
func DecodeJSON(data []byte, p *bc.Program) (*Set, error) {
	var in setJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("summary: decoding set: %w", err)
	}
	if in.Version != Version {
		return nil, fmt.Errorf("summary: version %d, want %d", in.Version, Version)
	}
	if in.ProgramFP != p.Fingerprint() {
		return nil, fmt.Errorf("summary: program fingerprint mismatch")
	}
	if len(in.Methods) != len(p.Methods) {
		return nil, fmt.Errorf("summary: %d entries for %d methods", len(in.Methods), len(p.Methods))
	}
	s := &Set{prog: p, sums: make([]*Summary, len(p.Methods))}
	for _, e := range in.Methods {
		if e.ID < 0 || e.ID >= len(p.Methods) || s.sums[e.ID] != nil {
			return nil, fmt.Errorf("summary: bad or duplicate method id %d", e.ID)
		}
		m := p.Methods[e.ID]
		if e.MethodFP != p.MethodFingerprint(m) {
			return nil, fmt.Errorf("summary: stale fingerprint for %s", m.QualifiedName())
		}
		sum := e.Summary
		if len(sum.ParamEscape) != m.NumArgs() {
			return nil, fmt.Errorf("summary: %s has %d levels for %d args",
				m.QualifiedName(), len(sum.ParamEscape), m.NumArgs())
		}
		for i, l := range sum.ParamEscape {
			if l > GlobalEscape {
				return nil, fmt.Errorf("summary: %s param %d level out of range", m.QualifiedName(), i)
			}
		}
		if sum.ReturnsParam < -1 || sum.ReturnsParam >= m.NumArgs() {
			return nil, fmt.Errorf("summary: %s returns-param out of range", m.QualifiedName())
		}
		for _, pr := range sum.Preds {
			if pr.Param < 0 || pr.Param >= m.NumArgs() || argKind(m, pr.Param) != bc.KindRef {
				return nil, fmt.Errorf("summary: %s pred names non-ref param %d", m.QualifiedName(), pr.Param)
			}
			if pr.IntParam < 0 || pr.IntParam >= m.NumArgs() || argKind(m, pr.IntParam) != bc.KindInt {
				return nil, fmt.Errorf("summary: %s pred guard on non-int param %d", m.QualifiedName(), pr.IntParam)
			}
			if pr.Relaxed >= sum.ParamEscape[pr.Param] {
				return nil, fmt.Errorf("summary: %s pred does not relax param %d", m.QualifiedName(), pr.Param)
			}
		}
		cp := sum
		cp.ParamEscape = append([]Lattice(nil), sum.ParamEscape...)
		cp.Preds = append([]Pred(nil), sum.Preds...)
		s.sums[e.ID] = &cp
		if cp.Conservative {
			s.stats.Cycles++
		}
		s.stats.Preds += len(cp.Preds)
		for i, l := range cp.ParamEscape {
			if argKind(m, i) != bc.KindRef {
				continue
			}
			switch l {
			case NoEscape:
				s.stats.NoEscape++
			case ArgEscape:
				s.stats.ArgEscape++
			case GlobalEscape:
				s.stats.GlobalEscape++
			}
		}
	}
	s.stats.Methods = len(p.Methods)
	return s, nil
}
