package build

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/ir"
)

// loopMethod assembles
//
//	sum(n): acc=0; i=0; while (i<n) { acc+=i; i++ }; return acc
//
// and returns the program, the method, and the loop-header bytecode index
// (the target of the backward goto).
func loopMethod(t *testing.T) (*bc.Program, *bc.Method, int) {
	t.Helper()
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("sum", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	iLoc := m.NewLocal(bc.KindInt)
	accLoc := m.NewLocal(bc.KindInt)
	m.Const(0).Store(accLoc).
		Const(0).Store(iLoc).
		Label("head").
		Load(iLoc).Load(0).IfCmp(bc.CondGE, "done").
		Load(accLoc).Load(iLoc).Add().Store(accLoc).
		Load(iLoc).Const(1).Add().Store(iLoc).
		Goto("head").
		Label("done").
		Load(accLoc).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	meth := prog.ClassByName("C").MethodByName("sum")
	// The loop header is the target of the last goto.
	header := -1
	for _, in := range meth.Code {
		if in.Op == bc.OpGoto && in.Target() <= 4 {
			header = in.Target()
		}
	}
	if header < 0 {
		t.Fatal("no backward goto found")
	}
	return prog, meth, header
}

// TestFrameStatesLivenessPrunedAtBranch checks that FrameStates only
// reference live locals: a local that is dead at the state's BCI is nil in
// Locals, so deoptimization never keeps dead values alive.
func TestFrameStatesLivenessPrunedAtBranch(t *testing.T) {
	// m(x): t = x+1; if (t < 0) return 0; return t
	// At the return of the taken branch, both x (local 0) and t are dead.
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	tLoc := m.NewLocal(bc.KindInt)
	m.Load(0).Const(1).Add().Store(tLoc).
		Load(tLoc).Const(0).IfCmp(bc.CondLT, "neg").
		Load(tLoc).ReturnValue().
		Label("neg").
		Const(0).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
	meth := prog.ClassByName("C").MethodByName("m")
	g, err := Build(meth)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}
	states := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			checkState(t, n.FrameState)
			if n.FrameState != nil {
				states++
			}
		}
		if b.Term != nil {
			checkState(t, b.Term.FrameState)
			if b.Term.FrameState != nil {
				states++
			}
		}
	}
	if states == 0 {
		t.Fatal("no frame states recorded")
	}
	// After the Store to tLoc, local 0 (the parameter) is never read
	// again; every later state must have pruned it.
	for _, b := range g.Blocks {
		if b.Term == nil || b.Term.Op != ir.OpReturn {
			continue
		}
		fs := b.Term.FrameState
		if fs == nil {
			continue
		}
		if fs.Locals[0] != nil {
			t.Fatalf("dead parameter local kept alive in return state at bci %d", fs.BCI)
		}
	}
}

// checkState asserts the structural invariants of one frame state.
func checkState(t *testing.T, fs *ir.FrameState) {
	t.Helper()
	if fs == nil {
		return
	}
	if len(fs.Locals) != fs.Method.NumLocals() {
		t.Fatalf("state at bci %d has %d locals, method has %d",
			fs.BCI, len(fs.Locals), fs.Method.NumLocals())
	}
}

// TestFrameStateAtLoopHeaderUsesPhis checks the merge case: the state
// attached to the loop's branch references the phi values of the merged
// locals, not either predecessor's copies.
func TestFrameStateAtLoopHeaderUsesPhis(t *testing.T) {
	_, meth, _ := loopMethod(t)
	g, err := Build(meth)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}
	// Find the loop branch (OpIf with a frame state) and check that the
	// loop-carried locals i and acc resolve to phi nodes at the header.
	found := false
	for _, b := range g.Blocks {
		if b.Term == nil || b.Term.Op != ir.OpIf || b.Term.FrameState == nil {
			continue
		}
		fs := b.Term.FrameState
		phis := 0
		for _, l := range fs.Locals {
			if l != nil && l.Op == ir.OpPhi {
				phis++
			}
		}
		if phis >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("loop branch state does not reference the header phis")
	}
}

// TestBuildOSRGraphShape checks the OSR construction: the graph is marked,
// its entry block carries parameters for exactly the live locals (dead
// slots get no parameter), parameter AuxInts follow the frame-transfer
// convention, and the graph verifies.
func TestBuildOSRGraphShape(t *testing.T) {
	_, meth, header := loopMethod(t)
	g, err := BuildOSR(meth, header)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}
	if !g.IsOSR || g.OSREntryBCI != header {
		t.Fatalf("IsOSR=%v OSREntryBCI=%d, want true/%d", g.IsOSR, g.OSREntryBCI, header)
	}
	// Collect params.
	slots := map[int64]bool{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Op == ir.OpParam {
				if slots[n.AuxInt] {
					t.Fatalf("duplicate OSR param for slot %d", n.AuxInt)
				}
				slots[n.AuxInt] = true
			}
		}
	}
	// All three locals (n, i, acc) are live at the header; the operand
	// stack is empty there.
	for s := 0; s < meth.NumLocals(); s++ {
		if !slots[int64(s)] {
			t.Fatalf("no OSR param for live local %d", s)
		}
	}
	for s := range slots {
		if s >= int64(meth.NumLocals()) {
			t.Fatalf("unexpected stack param %d for empty header stack", s)
		}
	}
}

// TestBuildOSRDeadLocalGetsNoParam checks liveness pruning of the OSR
// entry itself: a local dead at the loop header must not become an entry
// parameter.
func TestBuildOSRDeadLocalGetsNoParam(t *testing.T) {
	// m(x): junk = x*2 (dead after the loop starts); i=0;
	// while (i < x) i++; return i
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	junk := m.NewLocal(bc.KindInt)
	iLoc := m.NewLocal(bc.KindInt)
	m.Load(0).Const(2).Mul().Store(junk).
		Const(0).Store(iLoc).
		Label("head").
		Load(iLoc).Load(0).IfCmp(bc.CondGE, "done").
		Load(iLoc).Const(1).Add().Store(iLoc).
		Goto("head").
		Label("done").
		Load(iLoc).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	meth := prog.ClassByName("C").MethodByName("m")
	header := -1
	for _, in := range meth.Code {
		if in.Op == bc.OpGoto {
			header = in.Target()
		}
	}
	g, err := BuildOSR(meth, header)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Op == ir.OpParam && n.AuxInt == int64(junk) {
				t.Fatalf("dead local %d got an OSR entry param", junk)
			}
		}
	}
}

// TestBuildOSRRejectsBadEntry checks input validation.
func TestBuildOSRRejectsBadEntry(t *testing.T) {
	_, meth, _ := loopMethod(t)
	if _, err := BuildOSR(meth, -1); err == nil {
		t.Fatal("negative entry accepted")
	}
	if _, err := BuildOSR(meth, len(meth.Code)+5); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}
