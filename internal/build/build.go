// Package build translates bytecode methods into the SSA IR by abstract
// interpretation over the operand stack and local variables, exactly as
// Graal's bytecode parser does for the CGO'14 Partial Escape Analysis
// paper's system: basic blocks are discovered from branch targets, phi
// nodes are inserted at control-flow merges (including loop headers, whose
// back-edge inputs are filled in once the loop body has been translated),
// and every deoptimization-relevant instruction captures a FrameState whose
// local slots are pruned by liveness.
//
// Liveness pruning is load-bearing for the paper's headline pattern (see
// DESIGN.md): without it, dead locals pin loop temporaries into merge
// states and FrameStates, and Partial Escape Analysis would be forced to
// materialize objects that the program can never observe again.
package build

import (
	"fmt"

	"pea/internal/bc"
	"pea/internal/ir"
	"pea/internal/obs"
)

// Build translates m into a fresh IR graph. The method must have passed
// bc.Verify (the assembler and the MiniJava front end both guarantee it);
// inconsistent bytecode is reported as an error rather than a panic.
func Build(m *bc.Method) (*ir.Graph, error) {
	return BuildWith(m, nil)
}

// BuildWith is Build with an observability sink receiving a phase event
// describing the translation (node/block counts). A nil sink is free.
func BuildWith(m *bc.Method, sink *obs.Sink) (*ir.Graph, error) {
	return buildWith(m, 0, false, sink)
}

// BuildOSR translates m into an on-stack-replacement graph entered at the
// loop header entryBCI: instead of the method's parameters, the entry block
// (an OSR preamble) holds one OpParam per local slot live at entryBCI
// (AuxInt = slot) and one per operand-stack slot (AuxInt = NumLocals +
// depth), matching the interpreter frame the VM transfers from. Only code
// reachable from entryBCI is translated, and the preamble's exit state
// feeds the loop-header merge through the same pruned-FrameState machinery
// as a regular loop entry.
func BuildOSR(m *bc.Method, entryBCI int) (*ir.Graph, error) {
	return BuildOSRWith(m, entryBCI, nil)
}

// BuildOSRWith is BuildOSR with an observability sink.
func BuildOSRWith(m *bc.Method, entryBCI int, sink *obs.Sink) (*ir.Graph, error) {
	return buildWith(m, entryBCI, true, sink)
}

func buildWith(m *bc.Method, entry int, osr bool, sink *obs.Sink) (g *ir.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("build: %s: internal error: %v", m.QualifiedName(), r)
		}
	}()
	var span obs.PhaseSpan
	if sink != nil {
		// QualifiedName allocates; compute it only when observing.
		phase := "build"
		if osr {
			phase = "build-osr"
		}
		span = obs.StartPhase(sink, phase, m.QualifiedName(), 0, 0)
	}
	b := &builder{m: m, entry: entry, osr: osr}
	g, err = b.build()
	if err != nil {
		return nil, err
	}
	span.End(g.NumNodes(), len(g.Blocks))
	return g, nil
}

// builder holds the per-method translation state.
type builder struct {
	m *bc.Method
	g *ir.Graph

	// entry is the bytecode index translation starts at (0 for a regular
	// build, the hot loop header for an OSR build).
	entry int
	// osr marks an on-stack-replacement build: the entry block is an OSR
	// preamble parameterized by the live locals and stack slots at entry.
	osr bool

	// leaders[pc] is true if pc starts a basic block.
	leaders []bool
	// reach[pc] is true if pc is reachable from the entry.
	reach []bool
	// blockAt maps a leader pc to its IR block.
	blockAt map[int]*ir.Block
	// succs lists, per leader pc, the successor leader pcs in edge order
	// (taken target first for conditional branches).
	succs map[int][]int
	// exsuccs lists, per leader pc whose block ends in a covered trapping
	// instruction, the handler pcs its dispatch chain can reach (table
	// order, up to and including the first catch-all entry). These edges
	// participate in reachability, liveness, and reverse postorder, but
	// control flows through the synthesized dispatch chain, not directly.
	exsuccs map[int][]int
	// chains maps such a leader pc to its synthesized dispatch chain.
	chains map[int]*dispatchChain
	// liveAt[pc] has one bool per local slot: live before executing pc.
	liveAt [][]bool

	// exit holds the abstract state at the end of each processed block.
	exit map[*ir.Block]*absState
	// pendingPhis records merge-block phis whose inputs are filled once
	// every predecessor's exit state exists.
	pendingPhis []pendingPhi
	// zeroOf lazily caches per-block default-value constants used to
	// complete phi inputs for locals that are live-in at a merge but
	// undefined on some path (the interpreter zero-initializes locals).
	zeroOf map[zeroKey]*ir.Node

	params []*ir.Node
}

type zeroKey struct {
	b *ir.Block
	k bc.Kind
}

// dispatchChain is the IR-only block sequence that selects an exception
// handler for one covered trapping instruction: the head holds the
// ExceptionObject node, then one type test per typed table entry (in table
// order), ending in a Goto for a catch-all entry or an Unwind when the
// table is exhausted.
type dispatchChain struct {
	head *ir.Block
	// blocks lists every chain block; all share one exit state (the
	// locals at the trap point with the exception object as the stack).
	blocks []*ir.Block
	excObj *ir.Node
}

// trappingOp reports whether op can raise a catchable trap: intrinsic
// faults (division by zero, null dereference, array bounds, negative array
// size, null monitor) or exceptions propagating out of a callee. OpThrow is
// handled separately as a terminator.
func trappingOp(op bc.Op) bool {
	// oplint:ignore — deliberate allowlist: every op absent here is
	// trap-free by construction, and new trapping ops must opt in.
	switch op {
	case bc.OpDiv, bc.OpRem,
		bc.OpGetField, bc.OpPutField,
		bc.OpArrayLoad, bc.OpArrayStore, bc.OpArrayLen,
		bc.OpNewArray,
		bc.OpMonitorEnter, bc.OpMonitorExit,
		bc.OpInvokeStatic, bc.OpInvokeDirect, bc.OpInvokeVirtual:
		return true
	}
	return false
}

// handlerPCs returns the handler pcs a trap at pc can dispatch to: the
// covering exception-table entries in order, stopping after the first
// catch-all (later entries are shadowed). Nil when pc is uncovered or the
// instruction cannot trap.
func (b *builder) handlerPCs(pc int) []int {
	in := &b.m.Code[pc]
	if !trappingOp(in.Op) && in.Op != bc.OpThrow {
		return nil
	}
	var hs []int
	for i := range b.m.ExceptionTable {
		h := &b.m.ExceptionTable[i]
		if !h.Covers(pc) {
			continue
		}
		hs = append(hs, h.Handler)
		if h.Class == nil {
			break
		}
	}
	return hs
}

// coveringEntries returns the dispatch-relevant exception-table entries for
// pc, in the same order as handlerPCs.
func (b *builder) coveringEntries(pc int) []*bc.ExceptionHandler {
	var es []*bc.ExceptionHandler
	for i := range b.m.ExceptionTable {
		h := &b.m.ExceptionTable[i]
		if !h.Covers(pc) {
			continue
		}
		es = append(es, h)
		if h.Class == nil {
			break
		}
	}
	return es
}

// pendingPhi describes one phi awaiting predecessor inputs: either a local
// slot (slot >= 0) or an operand stack position (slot < 0, depth = ^slot).
type pendingPhi struct {
	block *ir.Block
	phi   *ir.Node
	slot  int
}

// absState is the abstract machine state: one IR value (or nil =
// dead/undefined) per local slot, plus the operand stack.
type absState struct {
	locals []*ir.Node
	stack  []*ir.Node
}

func (s *absState) clone() *absState {
	return &absState{
		locals: append([]*ir.Node(nil), s.locals...),
		stack:  append([]*ir.Node(nil), s.stack...),
	}
}

func (s *absState) push(n *ir.Node) { s.stack = append(s.stack, n) }

func (s *absState) pop() *ir.Node {
	n := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return n
}

func (b *builder) build() (*ir.Graph, error) {
	m := b.m
	if len(m.Code) == 0 {
		return nil, fmt.Errorf("build: %s has no code", m.QualifiedName())
	}
	if b.entry < 0 || b.entry >= len(m.Code) {
		return nil, fmt.Errorf("build: %s: entry bci %d out of range [0,%d)",
			m.QualifiedName(), b.entry, len(m.Code))
	}
	b.findBlocks()
	b.computeLiveness()

	b.g = ir.NewGraph(m)
	b.blockAt = make(map[int]*ir.Block)
	b.exit = make(map[*ir.Block]*absState)
	b.zeroOf = make(map[zeroKey]*ir.Node)

	// Create IR blocks for every reachable leader. The graph's entry block
	// is reused for the entry pc unless that pc is itself a branch target
	// (a loop header — always the case for an OSR build, where the entry
	// IS the hot loop header), in which case a preamble block holding the
	// parameters is kept as the entry, since the IR entry block must have
	// no predecessors.
	leaderPCs := []int{}
	for pc := range m.Code {
		if b.reach[pc] && b.leaders[pc] {
			leaderPCs = append(leaderPCs, pc)
		}
	}
	entryIsTarget := false
	for _, ss := range b.succs {
		for _, s := range ss {
			if s == b.entry {
				entryIsTarget = true
			}
		}
	}
	for _, hs := range b.exsuccs {
		for _, h := range hs {
			if h == b.entry {
				entryIsTarget = true
			}
		}
	}
	var preamble *ir.Block
	if b.osr || entryIsTarget {
		preamble = b.g.Entry()
		for _, pc := range leaderPCs {
			b.blockAt[pc] = b.g.NewBlock()
		}
	} else {
		b.blockAt[b.entry] = b.g.Entry()
		for _, pc := range leaderPCs {
			if pc != b.entry {
				b.blockAt[pc] = b.g.NewBlock()
			}
		}
	}

	// Wire predecessor lists up front, in deterministic (pc, edge) order,
	// so that merge-block phi inputs have a fixed correspondence.
	for _, pc := range leaderPCs {
		from := b.blockAt[pc]
		for _, s := range b.succs[pc] {
			b.blockAt[s].Preds = append(b.blockAt[s].Preds, from)
		}
	}
	if preamble != nil {
		b.blockAt[b.entry].Preds = append([]*ir.Block{preamble}, b.blockAt[b.entry].Preds...)
		// Keep edge-order bookkeeping consistent: the preamble edge is
		// predecessor 0 of the entry's block.
	}

	// Synthesize one dispatch chain per block ending in a covered trapping
	// instruction, wiring handler predecessors in deterministic pc order.
	b.chains = make(map[int]*dispatchChain)
	for _, pc := range leaderPCs {
		if len(b.exsuccs[pc]) == 0 {
			continue
		}
		last := b.blockEnd(pc) - 1
		b.chains[pc] = b.newChain(last, b.blockAt[pc], b.coveringEntries(last))
	}

	// Place parameters (and the preamble jump) in the entry block. A
	// regular build parameterizes on the method arguments; an OSR build
	// parameterizes on the interpreter frame at the loop header — the
	// liveness-pruned local slots plus the operand stack.
	paramBlock := b.g.Entry()
	var initial *absState
	if b.osr {
		b.g.IsOSR = true
		b.g.OSREntryBCI = b.entry
		initial = &absState{locals: make([]*ir.Node, m.NumLocals())}
		live := b.liveAt[b.entry]
		for s := 0; s < m.NumLocals(); s++ {
			if live == nil || !live[s] {
				continue // dead at the header: never transferred
			}
			p := b.g.NewNode(ir.OpParam, m.LocalKinds[s])
			p.AuxInt = int64(s)
			b.g.Append(paramBlock, p)
			initial.locals[s] = p
		}
		shape, err := bc.StackShape(m, b.entry)
		if err != nil {
			return nil, err
		}
		for d, k := range shape {
			p := b.g.NewNode(ir.OpParam, k)
			p.AuxInt = int64(m.NumLocals() + d)
			b.g.Append(paramBlock, p)
			initial.push(p)
		}
	} else {
		b.params = make([]*ir.Node, m.NumArgs())
		for i := 0; i < m.NumArgs(); i++ {
			kind := m.LocalKinds[i]
			p := b.g.NewNode(ir.OpParam, kind)
			p.AuxInt = int64(i)
			b.g.Append(paramBlock, p)
			b.params[i] = p
		}
		if preamble != nil {
			// The preamble's exit state is the method-entry state:
			// parameters in the argument slots, other locals undefined.
			initial = &absState{locals: make([]*ir.Node, m.NumLocals())}
			copy(initial.locals, b.params)
		}
	}
	if preamble != nil {
		gt := b.g.NewNode(ir.OpGoto, bc.KindVoid)
		gt.Block = preamble
		preamble.Term = gt
		preamble.Succs = []*ir.Block{b.blockAt[b.entry]}
		// Recording the preamble's exit state here lets the entry block
		// (a loop header) be handled by the ordinary merge path in
		// entryState.
		b.exit[preamble] = initial
	}

	// Translate blocks in reverse postorder so every forward predecessor
	// is processed before its successors; back-edge phi inputs are filled
	// afterwards.
	rpo := b.reversePostorder(leaderPCs)
	for _, pc := range rpo {
		if err := b.translateBlock(pc); err != nil {
			return nil, err
		}
	}
	if err := b.fillPhis(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// findBlocks discovers reachable instructions, block leaders, and the
// block-level successor edges.
func (b *builder) findBlocks() {
	code := b.m.Code
	b.reach = make([]bool, len(code))
	b.leaders = make([]bool, len(code))
	b.leaders[b.entry] = true

	// Reachability + leader discovery over instruction successors.
	work := []int{b.entry}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if pc < 0 || pc >= len(code) || b.reach[pc] {
			continue
		}
		b.reach[pc] = true
		in := &code[pc]
		// A covered trapping instruction also reaches its handlers (via
		// the dispatch chain), and must end its block so the exceptional
		// edge has a unique source.
		if hs := b.handlerPCs(pc); len(hs) > 0 {
			for _, h := range hs {
				b.leaders[h] = true
				work = append(work, h)
			}
			if in.Op != bc.OpThrow && pc+1 < len(code) {
				b.leaders[pc+1] = true
			}
		}
		switch {
		case in.Op == bc.OpGoto:
			b.leaders[in.Target()] = true
			work = append(work, in.Target())
		case in.Op.IsBranch():
			b.leaders[in.Target()] = true
			if pc+1 < len(code) {
				b.leaders[pc+1] = true
			}
			work = append(work, in.Target(), pc+1)
		case in.Op.IsTerminator(): // return/returnvalue/throw
		default:
			work = append(work, pc+1)
		}
	}

	// Block successor edges, per leader.
	b.succs = make(map[int][]int)
	for pc := 0; pc < len(code); pc++ {
		if !b.reach[pc] || !b.leaders[pc] {
			continue
		}
		end := pc
		for !code[end].Op.IsTerminator() && !code[end].Op.IsBranch() {
			if end+1 < len(code) && b.reach[end+1] && b.leaders[end+1] {
				// Falls through into the next block.
				b.succs[pc] = []int{end + 1}
				break
			}
			end++
		}
		if len(b.succs[pc]) > 0 {
			continue
		}
		in := &code[end]
		switch {
		case in.Op == bc.OpGoto:
			b.succs[pc] = []int{in.Target()}
		case in.Op.IsBranch():
			b.succs[pc] = []int{in.Target(), end + 1}
		default: // return/returnvalue/throw
			b.succs[pc] = nil
		}
	}

	// Exceptional successor edges, per leader: the block's last
	// instruction is a covered trapping op (the leader-marking above
	// guarantees such an op ends its block).
	b.exsuccs = make(map[int][]int)
	for pc := 0; pc < len(code); pc++ {
		if !b.reach[pc] || !b.leaders[pc] {
			continue
		}
		last := b.blockEnd(pc) - 1
		if hs := b.handlerPCs(last); len(hs) > 0 {
			b.exsuccs[pc] = hs
		}
	}
}

// blockEnd returns the pc one past the last instruction belonging to the
// block led by pc (exclusive bound).
func (b *builder) blockEnd(leader int) int {
	code := b.m.Code
	pc := leader
	for {
		in := &code[pc]
		if in.Op.IsTerminator() || in.Op.IsBranch() {
			return pc + 1
		}
		if pc+1 < len(code) && b.reach[pc+1] && b.leaders[pc+1] {
			return pc + 1
		}
		pc++
	}
}

// reversePostorder orders reachable leader pcs so that every block precedes
// its successors except along back edges.
func (b *builder) reversePostorder(leaders []int) []int {
	visited := make(map[int]bool, len(leaders))
	post := make([]int, 0, len(leaders))
	var dfs func(pc int)
	dfs = func(pc int) {
		if visited[pc] {
			return
		}
		visited[pc] = true
		for _, s := range b.succs[pc] {
			dfs(s)
		}
		for _, s := range b.exsuccs[pc] {
			dfs(s)
		}
		post = append(post, pc)
	}
	dfs(b.entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// computeLiveness computes, for every reachable pc, which local slots are
// live immediately before executing it (classic backward dataflow at block
// granularity, then a backward sweep within each block). FrameStates use
// this to nil out dead slots.
func (b *builder) computeLiveness() {
	code := b.m.Code
	nLocals := b.m.NumLocals()
	b.liveAt = make([][]bool, len(code))

	type blockInfo struct {
		leader, end int
		use, def    []bool
		liveOut     []bool
	}
	var blocks []*blockInfo
	byLeader := make(map[int]*blockInfo)
	for pc := 0; pc < len(code); pc++ {
		if b.reach[pc] && b.leaders[pc] {
			bi := &blockInfo{
				leader:  pc,
				end:     b.blockEnd(pc),
				use:     make([]bool, nLocals),
				def:     make([]bool, nLocals),
				liveOut: make([]bool, nLocals),
			}
			for i := pc; i < bi.end; i++ {
				in := &code[i]
				// oplint:ignore — liveness only cares about local
				// slot traffic; every other op is a no-op here.
				switch in.Op {
				case bc.OpLoad:
					if !bi.def[in.A] {
						bi.use[in.A] = true
					}
				case bc.OpStore:
					bi.def[in.A] = true
				}
			}
			blocks = append(blocks, bi)
			byLeader[pc] = bi
		}
	}
	liveIn := func(bi *blockInfo) []bool {
		in := make([]bool, nLocals)
		for s := 0; s < nLocals; s++ {
			in[s] = bi.use[s] || (bi.liveOut[s] && !bi.def[s])
		}
		return in
	}
	for changed := true; changed; {
		changed = false
		for i := len(blocks) - 1; i >= 0; i-- {
			bi := blocks[i]
			for _, s := range append(append([]int(nil), b.succs[bi.leader]...), b.exsuccs[bi.leader]...) {
				sin := liveIn(byLeader[s])
				for k, v := range sin {
					if v && !bi.liveOut[k] {
						bi.liveOut[k] = true
						changed = true
					}
				}
			}
		}
	}
	// Per-pc backward sweep.
	for _, bi := range blocks {
		live := append([]bool(nil), bi.liveOut...)
		for pc := bi.end - 1; pc >= bi.leader; pc-- {
			in := &code[pc]
			// oplint:ignore — backward liveness transfer: only local
			// slot kills and uses matter.
			switch in.Op {
			case bc.OpStore:
				live[in.A] = false
			case bc.OpLoad:
				live[in.A] = true
			}
			b.liveAt[pc] = append([]bool(nil), live...)
		}
	}
}

// newChain builds the dispatch chain for a trap at trapPC in the block
// `from`: the head materializes the in-flight exception object, each typed
// table entry becomes a dynamic InstanceOf test (intrinsic traps carry a
// null exception object, so typed entries never match them), a catch-all
// entry ends the chain with a Goto, and an exhausted table ends it with an
// Unwind that re-raises to the caller. Handler predecessors are wired here;
// the trapping block's own successor edge to the head is set when the block
// is translated.
func (b *builder) newChain(trapPC int, from *ir.Block, entries []*bc.ExceptionHandler) *dispatchChain {
	head := b.g.NewBlock()
	head.Preds = []*ir.Block{from}
	excObj := b.g.NewNode(ir.OpExceptionObject, bc.KindRef)
	excObj.BCI = trapPC
	b.g.Append(head, excObj)
	ch := &dispatchChain{head: head, blocks: []*ir.Block{head}, excObj: excObj}
	cur := head
	for _, h := range entries {
		hb := b.blockAt[h.Handler]
		if h.Class == nil {
			gt := b.g.NewNode(ir.OpGoto, bc.KindVoid)
			gt.BCI = trapPC
			gt.Block = cur
			cur.Term = gt
			cur.Succs = []*ir.Block{hb}
			hb.Preds = append(hb.Preds, cur)
			return ch
		}
		iof := b.g.NewNode(ir.OpInstanceOf, bc.KindInt, excObj)
		iof.Class = h.Class
		iof.BCI = trapPC
		b.g.Append(cur, iof)
		next := b.g.NewBlock()
		next.Preds = []*ir.Block{cur}
		t := b.g.NewNode(ir.OpIf, bc.KindVoid, iof)
		t.BCI = trapPC
		t.Block = cur
		cur.Term = t
		cur.Succs = []*ir.Block{hb, next}
		hb.Preds = append(hb.Preds, cur)
		ch.blocks = append(ch.blocks, next)
		cur = next
	}
	uw := b.g.NewNode(ir.OpUnwind, bc.KindVoid)
	uw.BCI = trapPC
	uw.Block = cur
	cur.Term = uw
	return ch
}

// entryState computes the abstract state at a block's entry, inserting
// phis for merges.
func (b *builder) entryState(leader int, blk *ir.Block) (*absState, error) {
	nLocals := b.m.NumLocals()
	switch {
	case len(blk.Preds) == 0:
		// Method entry: parameters fill the argument slots, other locals
		// start undefined (the interpreter zero-fills them; loads of
		// undefined slots synthesize the zero constant lazily). When pc 0
		// is a branch target, the entry block is a preamble whose exit was
		// recorded in build(), so this case never sees a loop header.
		st := &absState{locals: make([]*ir.Node, nLocals)}
		copy(st.locals, b.params)
		return st, nil
	case len(blk.Preds) == 1:
		ex := b.exit[blk.Preds[0]]
		if ex == nil {
			return nil, fmt.Errorf("build: %s: predecessor of block at pc %d not translated", b.m.QualifiedName(), leader)
		}
		return ex.clone(), nil
	}

	// Merge: one phi per live-in local slot and per operand stack slot.
	// Inputs are filled in fillPhis once all predecessor exits exist; at
	// least one predecessor (a forward edge) is already translated and
	// provides the stack depth and kinds.
	var model *absState
	for _, p := range blk.Preds {
		if ex := b.exit[p]; ex != nil {
			model = ex
			break
		}
	}
	if model == nil {
		return nil, fmt.Errorf("build: %s: merge at pc %d has no translated predecessor", b.m.QualifiedName(), leader)
	}
	live := b.liveAt[leader]
	st := &absState{locals: make([]*ir.Node, nLocals)}
	for s := 0; s < nLocals; s++ {
		if !live[s] {
			continue
		}
		phi := b.g.AddPhi(blk, b.m.LocalKinds[s])
		phi.BCI = leader
		b.pendingPhis = append(b.pendingPhis, pendingPhi{block: blk, phi: phi, slot: s})
		st.locals[s] = phi
	}
	for d, v := range model.stack {
		phi := b.g.AddPhi(blk, v.Kind)
		phi.BCI = leader
		b.pendingPhis = append(b.pendingPhis, pendingPhi{block: blk, phi: phi, slot: ^d})
		st.push(phi)
	}
	return st, nil
}

// fillPhis completes merge phis with one input per predecessor, in
// predecessor order.
func (b *builder) fillPhis() error {
	for _, pp := range b.pendingPhis {
		blk, phi := pp.block, pp.phi
		phi.Inputs = make([]*ir.Node, len(blk.Preds))
		for i, pred := range blk.Preds {
			ex := b.exit[pred]
			if ex == nil {
				return fmt.Errorf("build: %s: phi v%d input from untranslated %s", b.m.QualifiedName(), phi.ID, pred)
			}
			var v *ir.Node
			if pp.slot >= 0 {
				v = ex.locals[pp.slot]
				if v == nil {
					// Live at the merge but undefined along this
					// path: the interpreter zero-initializes
					// locals, so complete the phi with the kind's
					// default constant, placed in the predecessor.
					v = b.zeroIn(pred, phi.Kind)
				}
			} else {
				d := ^pp.slot
				if d >= len(ex.stack) {
					return fmt.Errorf("build: %s: inconsistent stack depth at merge %s", b.m.QualifiedName(), blk)
				}
				v = ex.stack[d]
			}
			phi.Inputs[i] = v
		}
		// Multiplicity: a conditional branch whose target equals its
		// fallthrough produces the same predecessor twice; both edges
		// carry the same exit state, which the loop above already
		// handles per-slot.
	}
	return nil
}

// zeroIn returns a default-value constant for kind placed at the end of
// pred (before its terminator), creating it on first use.
func (b *builder) zeroIn(pred *ir.Block, kind bc.Kind) *ir.Node {
	key := zeroKey{pred, kind}
	if n, ok := b.zeroOf[key]; ok {
		return n
	}
	var n *ir.Node
	if kind == bc.KindRef {
		n = b.g.NewNode(ir.OpConstNull, bc.KindRef)
	} else {
		n = b.g.NewNode(ir.OpConst, bc.KindInt)
	}
	// An OnException terminator must keep guarding the block's last node;
	// slot the constant in front of the guard.
	if pred.Term != nil && pred.Term.Op == ir.OpOnException {
		b.g.InsertBefore(pred, n, pred.Term.Inputs[0])
	} else {
		b.g.Append(pred, n)
	}
	b.zeroOf[key] = n
	return n
}

// frameState captures the bytecode-level state before executing pc: the
// full operand stack (the instruction at pc is re-executed after
// deoptimization, so its operands must be present) and the local slots
// pruned to those live at pc.
func (b *builder) frameState(pc int, st *absState) *ir.FrameState {
	fs := &ir.FrameState{
		Method: b.m,
		BCI:    pc,
		Locals: make([]*ir.Node, len(st.locals)),
		Stack:  append([]*ir.Node(nil), st.stack...),
	}
	live := b.liveAt[pc]
	for i, v := range st.locals {
		if live != nil && live[i] {
			fs.Locals[i] = v
		}
	}
	return fs
}

// translateBlock translates the instructions of the block led by leader.
func (b *builder) translateBlock(leader int) error {
	blk := b.blockAt[leader]
	st, err := b.entryState(leader, blk)
	if err != nil {
		return err
	}
	code := b.m.Code
	end := b.blockEnd(leader)

	// newNode creates, places and tags a node for the instruction at pc.
	newNode := func(pc int, op ir.Op, kind bc.Kind, inputs ...*ir.Node) *ir.Node {
		n := b.g.NewNode(op, kind, inputs...)
		n.BCI = pc
		b.g.Append(blk, n)
		return n
	}
	setTerm := func(pc int, n *ir.Node, succPCs ...int) {
		n.BCI = pc
		n.Block = blk
		blk.Term = n
		blk.Succs = make([]*ir.Block, len(succPCs))
		for i, s := range succPCs {
			blk.Succs[i] = b.blockAt[s]
		}
	}
	loadLocal := func(pc, slot int) *ir.Node {
		if v := st.locals[slot]; v != nil {
			return v
		}
		// Undefined slot: the interpreter sees the kind's zero value.
		var v *ir.Node
		if b.m.LocalKinds[slot] == bc.KindRef {
			v = newNode(pc, ir.OpConstNull, bc.KindRef)
		} else {
			v = newNode(pc, ir.OpConst, bc.KindInt)
		}
		st.locals[slot] = v
		return v
	}

	for pc := leader; pc < end; pc++ {
		in := &code[pc]
		switch in.Op {
		case bc.OpNop:

		case bc.OpConst:
			n := newNode(pc, ir.OpConst, bc.KindInt)
			n.AuxInt = in.A
			st.push(n)
		case bc.OpConstNull:
			st.push(newNode(pc, ir.OpConstNull, bc.KindRef))
		case bc.OpLoad:
			st.push(loadLocal(pc, int(in.A)))
		case bc.OpStore:
			st.locals[in.A] = st.pop()
		case bc.OpPop:
			st.pop()
		case bc.OpDup:
			st.push(st.stack[len(st.stack)-1])
		case bc.OpSwap:
			n := len(st.stack)
			st.stack[n-1], st.stack[n-2] = st.stack[n-2], st.stack[n-1]

		case bc.OpAdd, bc.OpSub, bc.OpMul, bc.OpDiv, bc.OpRem,
			bc.OpAnd, bc.OpOr, bc.OpXor, bc.OpShl, bc.OpShr, bc.OpUShr:
			y := st.pop()
			x := st.pop()
			n := newNode(pc, ir.OpArith, bc.KindInt, x, y)
			n.Aux2 = in.Op
			st.push(n)
		case bc.OpNeg:
			st.push(newNode(pc, ir.OpNeg, bc.KindInt, st.pop()))
		case bc.OpCmp:
			y := st.pop()
			x := st.pop()
			n := newNode(pc, ir.OpCmp, bc.KindInt, x, y)
			n.Cond = in.Cond
			st.push(n)

		case bc.OpGoto:
			setTerm(pc, b.g.NewNode(ir.OpGoto, bc.KindVoid), in.Target())
		case bc.OpIfCmp, bc.OpIf, bc.OpIfRef, bc.OpIfNull:
			fs := b.frameState(pc, st)
			var cond *ir.Node
			// oplint:ignore — the enclosing case limits in.Op to the
			// four conditional branches.
			switch in.Op {
			case bc.OpIfCmp:
				y := st.pop()
				x := st.pop()
				cond = newNode(pc, ir.OpCmp, bc.KindInt, x, y)
				cond.Cond = in.Cond
			case bc.OpIf:
				x := st.pop()
				zero := newNode(pc, ir.OpConst, bc.KindInt)
				cond = newNode(pc, ir.OpCmp, bc.KindInt, x, zero)
				cond.Cond = in.Cond
			case bc.OpIfRef:
				y := st.pop()
				x := st.pop()
				cond = newNode(pc, ir.OpRefEq, bc.KindInt, x, y)
				cond.Cond = in.Cond
			case bc.OpIfNull:
				x := st.pop()
				null := newNode(pc, ir.OpConstNull, bc.KindRef)
				cond = newNode(pc, ir.OpRefEq, bc.KindInt, x, null)
				cond.Cond = in.Cond
			}
			t := b.g.NewNode(ir.OpIf, bc.KindVoid, cond)
			t.FrameState = fs
			setTerm(pc, t, in.Target(), pc+1)

		case bc.OpNew:
			n := newNode(pc, ir.OpNew, bc.KindRef)
			n.Class = in.Class
			// (Method, BCI) is the allocation's stable site identity for
			// escape attribution; the inliner clones both, so the site
			// survives into caller graphs.
			n.Method = b.m
			st.push(n)
		case bc.OpNewArray:
			ln := st.pop()
			n := newNode(pc, ir.OpNewArray, bc.KindRef, ln)
			n.ElemKind = in.Kind
			n.Method = b.m
			st.push(n)
		case bc.OpGetField:
			recv := st.pop()
			n := newNode(pc, ir.OpLoadField, in.Field.Kind, recv)
			n.Field = in.Field
			st.push(n)
		case bc.OpPutField:
			fs := b.frameState(pc, st)
			v := st.pop()
			recv := st.pop()
			n := newNode(pc, ir.OpStoreField, bc.KindVoid, recv, v)
			n.Field = in.Field
			n.FrameState = fs
		case bc.OpGetStatic:
			n := newNode(pc, ir.OpLoadStatic, in.Field.Kind)
			n.Field = in.Field
			st.push(n)
		case bc.OpPutStatic:
			fs := b.frameState(pc, st)
			n := newNode(pc, ir.OpStoreStatic, bc.KindVoid, st.pop())
			n.Field = in.Field
			n.FrameState = fs
		case bc.OpArrayLoad:
			idx := st.pop()
			arr := st.pop()
			n := newNode(pc, ir.OpLoadIndexed, in.Kind, arr, idx)
			n.ElemKind = in.Kind
			st.push(n)
		case bc.OpArrayStore:
			fs := b.frameState(pc, st)
			v := st.pop()
			idx := st.pop()
			arr := st.pop()
			n := newNode(pc, ir.OpStoreIndexed, bc.KindVoid, arr, idx, v)
			n.ElemKind = in.Kind
			n.FrameState = fs
		case bc.OpArrayLen:
			st.push(newNode(pc, ir.OpArrayLength, bc.KindInt, st.pop()))
		case bc.OpInstanceOf:
			n := newNode(pc, ir.OpInstanceOf, bc.KindInt, st.pop())
			n.Class = in.Class
			st.push(n)

		case bc.OpInvokeStatic, bc.OpInvokeDirect, bc.OpInvokeVirtual:
			fs := b.frameState(pc, st)
			callee := in.Method
			nargs := callee.NumArgs()
			args := make([]*ir.Node, nargs)
			for i := nargs - 1; i >= 0; i-- {
				args[i] = st.pop()
			}
			n := newNode(pc, ir.OpInvoke, callee.Ret, args...)
			n.Aux2 = in.Op
			n.Method = callee
			n.FrameState = fs
			if callee.Ret != bc.KindVoid {
				st.push(n)
			}

		case bc.OpMonitorEnter:
			fs := b.frameState(pc, st)
			n := newNode(pc, ir.OpMonitorEnter, bc.KindVoid, st.pop())
			n.FrameState = fs
		case bc.OpMonitorExit:
			fs := b.frameState(pc, st)
			n := newNode(pc, ir.OpMonitorExit, bc.KindVoid, st.pop())
			n.FrameState = fs

		case bc.OpReturn:
			t := b.g.NewNode(ir.OpReturn, bc.KindVoid)
			t.FrameState = b.frameState(pc, st)
			setTerm(pc, t)
		case bc.OpReturnValue:
			fs := b.frameState(pc, st)
			t := b.g.NewNode(ir.OpReturn, bc.KindVoid, st.pop())
			t.FrameState = fs
			setTerm(pc, t)
		case bc.OpThrow:
			fs := b.frameState(pc, st)
			t := b.g.NewNode(ir.OpThrow, bc.KindVoid, st.pop())
			t.FrameState = fs
			setTerm(pc, t)

		case bc.OpPrint:
			fs := b.frameState(pc, st)
			n := newNode(pc, ir.OpPrint, bc.KindVoid, st.pop())
			n.FrameState = fs
		case bc.OpRand:
			fs := b.frameState(pc, st)
			n := newNode(pc, ir.OpRand, bc.KindInt)
			n.AuxInt = in.A
			n.FrameState = fs
			st.push(n)

		default:
			return fmt.Errorf("build: %s: pc %d: unsupported opcode %s", b.m.QualifiedName(), pc, in.Op)
		}
	}

	// A block ending in a covered trapping instruction gets its
	// exceptional edge: an OnException terminator guarding the trapping
	// node (a covered Throw keeps its Throw terminator and takes the
	// dispatch chain as its only successor). Every chain block shares one
	// exit state — the locals at the trap point with the exception object
	// as the sole stack slot — which is what the handler block's merge
	// phis consume.
	if ch := b.chains[leader]; ch != nil {
		if blk.Term != nil {
			// Covered OpThrow: ir.Verify accepts a single-successor Throw.
			blk.Succs = []*ir.Block{ch.head}
		} else {
			guard := blk.Nodes[len(blk.Nodes)-1]
			t := b.g.NewNode(ir.OpOnException, bc.KindVoid, guard)
			t.BCI = end - 1
			t.Block = blk
			blk.Term = t
			blk.Succs = []*ir.Block{b.blockAt[b.succs[leader][0]], ch.head}
		}
		exitSt := &absState{
			locals: append([]*ir.Node(nil), st.locals...),
			stack:  []*ir.Node{ch.excObj},
		}
		for _, cb := range ch.blocks {
			b.exit[cb] = exitSt
		}
	}

	// A block that neither branches nor returns falls through into the
	// next leader.
	if blk.Term == nil {
		setTerm(end-1, b.g.NewNode(ir.OpGoto, bc.KindVoid), b.succs[leader][0])
	}
	b.exit[blk] = st
	return nil
}
