// Package ea implements the control-flow-insensitive Escape Analysis
// baseline the paper compares against (§6.2): equi-escape sets in the
// style of Kotzmann and Mössenböck, as used by the HotSpot compilers. All
// nodes that may refer to the same object are merged into one set
// (union-find); a set escapes if any member is stored to a global, passed
// to a call, returned, or thrown. An allocation is scalar-replaceable only
// if its whole set never escapes anywhere in the method — the
// "all-or-nothing approach" whose weakness motivates Partial Escape
// Analysis.
//
// The actual transformation (scalar replacement, lock elision, frame-state
// virtualization) is delegated to the pea package, restricted to the
// provably non-escaping allocations; on that subset PEA's flow-sensitive
// machinery degenerates to the classic flow-insensitive optimization, so
// both configurations share one battle-tested rewriter.
package ea

import (
	"pea/internal/bc"
	"pea/internal/ir"
	"pea/internal/pea"
)

// Analyze computes the set of allocation nodes (OpNew / OpNewArray) that
// never escape the graph under equi-escape-set rules.
func Analyze(g *ir.Graph) map[*ir.Node]bool {
	u := newUnionFind()

	escape := func(n *ir.Node) {
		if n != nil && n.Kind == bc.KindRef {
			u.markEscaped(n)
		}
	}
	unionRef := func(x, y *ir.Node) {
		if x == nil || y == nil || x.Kind != bc.KindRef || y.Kind != bc.KindRef {
			return
		}
		// The null constant refers to no object; merging through it
		// would spuriously bridge every set that ever stores null.
		if x.Op == ir.OpConstNull || y.Op == ir.OpConstNull {
			return
		}
		u.union(x, y)
	}

	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		switch n.Op {
		case ir.OpParam, ir.OpLoadStatic:
			// Unknown sources: anything merged with them escapes.
			escape(n)
		case ir.OpInvoke:
			// Arguments escape into the callee; the result is an
			// unknown object.
			for _, in := range n.Inputs {
				escape(in)
			}
			escape(n)
		case ir.OpReturn, ir.OpThrow:
			for _, in := range n.Inputs {
				escape(in)
			}
		case ir.OpStoreStatic:
			escape(n.Inputs[0])
		case ir.OpStoreField:
			// The stored value shares the fate of the object it is
			// stored into.
			unionRef(n.Inputs[0], n.Inputs[1])
		case ir.OpStoreIndexed:
			unionRef(n.Inputs[0], n.Inputs[2])
		case ir.OpLoadField:
			// A value loaded from an object may be anything stored
			// into it: same set.
			unionRef(n, n.Inputs[0])
		case ir.OpLoadIndexed:
			unionRef(n, n.Inputs[0])
		case ir.OpPhi:
			for _, in := range n.Inputs {
				unionRef(n, in)
			}
		case ir.OpDeopt:
			// Frame states do not cause escapes: the deoptimization
			// runtime rematerializes scalar-replaced objects
			// (Kotzmann's contribution, which both EA and PEA
			// configurations share here).
		}
	})

	nonEscaping := make(map[*ir.Node]bool)
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if (n.Op == ir.OpNew || n.Op == ir.OpNewArray) && !u.escaped(n) {
			nonEscaping[n] = true
		}
	})
	return nonEscaping
}

// Run performs flow-insensitive escape analysis and scalar replacement on
// g. It returns the transformation result (same shape as pea.Result).
func Run(g *ir.Graph, conf pea.Config) (pea.Result, error) {
	allowed := Analyze(g)
	if len(allowed) == 0 {
		return pea.Result{}, nil
	}
	conf.AllowAlloc = func(n *ir.Node) bool { return allowed[n] }
	return pea.Run(g, conf)
}

// unionFind is a union-find over nodes with an "escaped" flag per set.
type unionFind struct {
	parent map[*ir.Node]*ir.Node
	esc    map[*ir.Node]bool // valid on set representatives
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[*ir.Node]*ir.Node), esc: make(map[*ir.Node]bool)}
}

func (u *unionFind) find(n *ir.Node) *ir.Node {
	p, ok := u.parent[n]
	if !ok || p == n {
		u.parent[n] = n
		return n
	}
	r := u.find(p)
	u.parent[n] = r
	return r
}

func (u *unionFind) union(a, b *ir.Node) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	u.parent[rb] = ra
	if u.esc[rb] {
		u.esc[ra] = true
	}
}

func (u *unionFind) markEscaped(n *ir.Node) { u.esc[u.find(n)] = true }

func (u *unionFind) escaped(n *ir.Node) bool { return u.esc[u.find(n)] }
