// Package ea implements the control-flow-insensitive Escape Analysis
// baseline the paper compares against (§6.2): equi-escape sets in the
// style of Kotzmann and Mössenböck, as used by the HotSpot compilers. All
// nodes that may refer to the same object are merged into one set
// (union-find); a set escapes if any member is stored to a global, passed
// to a call, returned, or thrown. An allocation is scalar-replaceable only
// if its whole set never escapes anywhere in the method — the
// "all-or-nothing approach" whose weakness motivates Partial Escape
// Analysis.
//
// The actual transformation (scalar replacement, lock elision, frame-state
// virtualization) is delegated to the pea package, restricted to the
// provably non-escaping allocations; on that subset PEA's flow-sensitive
// machinery degenerates to the classic flow-insensitive optimization, so
// both configurations share one battle-tested rewriter.
package ea

import (
	"fmt"

	"pea/internal/bc"
	"pea/internal/ir"
	"pea/internal/obs"
	"pea/internal/pea"
)

// Escape reasons recorded on equi-escape sets and reported in ea_verdict
// events.
const (
	reasonUnknownSource = "unknown-source" // merged with a param or static load
	reasonCallArgument  = "call-argument"
	reasonCallResult    = "call-result"
	reasonReturned      = "returned"
	reasonThrown        = "thrown"
	reasonStoredStatic  = "stored-to-static"
	// reasonPrintSink marks values reaching the native print sink —
	// reported separately from call arguments so escape attribution does
	// not blame calls for unrelated native sinks. (Today OpPrint only
	// accepts ints, so no ref ever carries this reason; the case keeps
	// the analysis conservative if print ever grows a ref form.)
	reasonPrintSink = "print-sink"
)

// Analyze computes the set of allocation nodes (OpNew / OpNewArray) that
// never escape the graph under equi-escape-set rules.
func Analyze(g *ir.Graph) map[*ir.Node]bool {
	nonEscaping, _ := analyze(g, nil)
	return nonEscaping
}

// AnalyzeWith is Analyze with an observability sink receiving one
// ea_verdict event per allocation site: verdict "captured" for allocations
// whose set never escapes, "escapes" with the recorded reason otherwise.
// calleeNoEscape, when non-nil, has pea.Config.CalleeNoEscape semantics:
// call arguments in positions every possible callee provably never
// observes do not escape into the call.
func AnalyzeWith(g *ir.Graph, sink *obs.Sink, calleeNoEscape func(*ir.Node) []bool) map[*ir.Node]bool {
	nonEscaping, u := analyze(g, calleeNoEscape)
	if sink != nil {
		method := g.Method.QualifiedName()
		g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
			if n.Op != ir.OpNew && n.Op != ir.OpNewArray {
				return
			}
			node := fmt.Sprintf("v%d", n.ID)
			site := method
			if n.Method != nil {
				site = fmt.Sprintf("%s@%d", n.Method.QualifiedName(), n.BCI)
			} else if n.BCI >= 0 {
				site = fmt.Sprintf("%s@%d", method, n.BCI)
			}
			if nonEscaping[n] {
				sink.EAVerdict(method, node, "captured", "", site)
			} else {
				sink.EAVerdict(method, node, "escapes", u.escapeReason(n), site)
			}
		})
	}
	return nonEscaping
}

func analyze(g *ir.Graph, calleeNoEscape func(*ir.Node) []bool) (map[*ir.Node]bool, *unionFind) {
	u := newUnionFind()

	escape := func(n *ir.Node, reason string) {
		if n != nil && n.Kind == bc.KindRef {
			u.markEscaped(n, reason)
		}
	}
	unionRef := func(x, y *ir.Node) {
		if x == nil || y == nil || x.Kind != bc.KindRef || y.Kind != bc.KindRef {
			return
		}
		// The null constant refers to no object; merging through it
		// would spuriously bridge every set that ever stores null.
		if x.Op == ir.OpConstNull || y.Op == ir.OpConstNull {
			return
		}
		u.union(x, y)
	}

	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		// oplint:ignore — enumerates escape *sources* only; ops absent
		// here contribute no escape edges.
		switch n.Op {
		case ir.OpParam, ir.OpLoadStatic, ir.OpExceptionObject:
			// Unknown sources: anything merged with them escapes. The
			// exception object entering a handler may be any thrown
			// reference (or null, for intrinsic traps).
			escape(n, reasonUnknownSource)
		case ir.OpInvoke:
			// Arguments escape into the callee — unless the
			// inter-procedural summary proves the position unobserved
			// by every possible callee, in which case the argument's
			// set is unaffected by the call (the pea transfer then
			// keeps such objects virtual and passes null). The result
			// is an unknown object regardless: ReturnsFresh is an
			// inlining signal, never a license to skip this.
			var safe []bool
			if calleeNoEscape != nil {
				if s := calleeNoEscape(n); len(s) == len(n.Inputs) {
					safe = s
				}
			}
			for i, in := range n.Inputs {
				if safe != nil && safe[i] {
					continue
				}
				escape(in, reasonCallArgument)
			}
			escape(n, reasonCallResult)
		case ir.OpPrint:
			// Native sink; distinct reason so attribution separates it
			// from call-argument escapes.
			for _, in := range n.Inputs {
				escape(in, reasonPrintSink)
			}
		case ir.OpMonitorEnter, ir.OpMonitorExit:
			// Locking observes the object but does not make it escape:
			// monitors on captured objects are elided by the shared
			// rewriter (the object provably has no concurrent aliases).
		case ir.OpReturn:
			for _, in := range n.Inputs {
				escape(in, reasonReturned)
			}
		case ir.OpThrow:
			for _, in := range n.Inputs {
				escape(in, reasonThrown)
			}
		case ir.OpStoreStatic:
			escape(n.Inputs[0], reasonStoredStatic)
		case ir.OpStoreField:
			// The stored value shares the fate of the object it is
			// stored into.
			unionRef(n.Inputs[0], n.Inputs[1])
		case ir.OpStoreIndexed:
			unionRef(n.Inputs[0], n.Inputs[2])
		case ir.OpLoadField:
			// A value loaded from an object may be anything stored
			// into it: same set.
			unionRef(n, n.Inputs[0])
		case ir.OpLoadIndexed:
			unionRef(n, n.Inputs[0])
		case ir.OpPhi:
			for _, in := range n.Inputs {
				unionRef(n, in)
			}
		case ir.OpDeopt:
			// Frame states do not cause escapes: the deoptimization
			// runtime rematerializes scalar-replaced objects
			// (Kotzmann's contribution, which both EA and PEA
			// configurations share here).
		}
	})

	nonEscaping := make(map[*ir.Node]bool)
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if (n.Op == ir.OpNew || n.Op == ir.OpNewArray) && !u.escaped(n) {
			nonEscaping[n] = true
		}
	})
	return nonEscaping, u
}

// Run performs flow-insensitive escape analysis and scalar replacement on
// g. It returns the transformation result (same shape as pea.Result).
// Verdict events are emitted to conf.Sink when set.
func Run(g *ir.Graph, conf pea.Config) (pea.Result, error) {
	allowed := AnalyzeWith(g, conf.Sink, conf.CalleeNoEscape)
	if len(allowed) == 0 {
		return pea.Result{}, nil
	}
	conf.AllowAlloc = func(n *ir.Node) bool { return allowed[n] }
	return pea.Run(g, conf)
}

// unionFind is a union-find over nodes with an "escaped" reason per set.
type unionFind struct {
	parent map[*ir.Node]*ir.Node
	// esc records, on set representatives, the first escape reason; a
	// missing entry means the set does not escape.
	esc map[*ir.Node]string
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[*ir.Node]*ir.Node), esc: make(map[*ir.Node]string)}
}

func (u *unionFind) find(n *ir.Node) *ir.Node {
	p, ok := u.parent[n]
	if !ok || p == n {
		u.parent[n] = n
		return n
	}
	r := u.find(p)
	u.parent[n] = r
	return r
}

func (u *unionFind) union(a, b *ir.Node) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	u.parent[rb] = ra
	if r, ok := u.esc[rb]; ok {
		if _, already := u.esc[ra]; !already {
			u.esc[ra] = r
		}
	}
}

func (u *unionFind) markEscaped(n *ir.Node, reason string) {
	r := u.find(n)
	if _, ok := u.esc[r]; !ok {
		u.esc[r] = reason
	}
}

func (u *unionFind) escaped(n *ir.Node) bool {
	_, ok := u.esc[u.find(n)]
	return ok
}

// escapeReason returns the recorded reason for an escaping set ("" if the
// set does not escape).
func (u *unionFind) escapeReason(n *ir.Node) string {
	return u.esc[u.find(n)]
}
