package ea

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/exec"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/pea"
	"pea/internal/rt"
	"pea/internal/testprog"
)

func buildGraph(t *testing.T, prog *bc.Program, cls, meth string) *ir.Graph {
	t.Helper()
	g, err := build.Build(prog.ClassByName(cls).MethodByName(meth))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// boxProgram builds `class Box { int v; Box next; static Box sink; }` plus
// one method assembled by body.
func boxProgram(t *testing.T, params []bc.Kind, ret bc.Kind,
	body func(m *bc.MethodAsm, box *bc.ClassAsm, v, next, sink *bc.Field)) *bc.Program {
	t.Helper()
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	v := box.Field("v", bc.KindInt)
	next := box.Field("next", bc.KindRef)
	sink := box.Static("sink", bc.KindRef)
	c := a.Class("C", "")
	m := c.Method("m", params, ret, true)
	body(m, box, v, next, sink)
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnalyzeNonEscaping(t *testing.T) {
	p := boxProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, next, sink *bc.Field) {
			l := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(l)
			m.Load(l).Load(0).PutField(v)
			m.Load(l).GetField(v).ReturnValue()
		})
	g := buildGraph(t, p, "C", "m")
	allowed := Analyze(g)
	if len(allowed) != 1 {
		t.Fatalf("non-escaping allocation not found: %v", allowed)
	}
}

func TestAnalyzeAllOrNothing(t *testing.T) {
	// The object escapes on one branch only: flow-insensitive EA must
	// reject it entirely (the paper's motivating weakness).
	p := boxProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, next, sink *bc.Field) {
			l := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(l)
			m.Load(0).If(bc.CondEQ, "done")
			m.Load(l).PutStatic(sink)
			m.Label("done").Load(l).GetField(v).ReturnValue()
		})
	g := buildGraph(t, p, "C", "m")
	if allowed := Analyze(g); len(allowed) != 0 {
		t.Fatalf("partially escaping object must not be allowed: %v", allowed)
	}
}

func TestAnalyzeEscapeRoutes(t *testing.T) {
	cases := []struct {
		name string
		body func(m *bc.MethodAsm, box *bc.ClassAsm, v, next, sink *bc.Field)
	}{
		{"static store", func(m *bc.MethodAsm, box *bc.ClassAsm, v, next, sink *bc.Field) {
			m.New(box.Ref()).PutStatic(sink)
			m.Const(0).ReturnValue()
		}},
		{"return", func(m *bc.MethodAsm, box *bc.ClassAsm, v, next, sink *bc.Field) {
			// ret kind is int in driver; use a second ref-returning method.
			m.New(box.Ref()).Pop() // placeholder; the real check below
			m.Const(0).ReturnValue()
		}},
		{"store into unknown", func(m *bc.MethodAsm, box *bc.ClassAsm, v, next, sink *bc.Field) {
			m.GetStatic(sink).New(box.Ref()).PutField(next)
			m.Const(0).ReturnValue()
		}},
	}
	for _, tc := range cases[:1] {
		t.Run(tc.name, func(t *testing.T) {
			p := boxProgram(t, nil, bc.KindInt, tc.body)
			g := buildGraph(t, p, "C", "m")
			if allowed := Analyze(g); len(allowed) != 0 {
				t.Fatalf("escaping object allowed: %v", allowed)
			}
		})
	}
	t.Run("store into unknown", func(t *testing.T) {
		p := boxProgram(t, nil, bc.KindInt, cases[2].body)
		g := buildGraph(t, p, "C", "m")
		if allowed := Analyze(g); len(allowed) != 0 {
			t.Fatalf("object stored into unknown target allowed: %v", allowed)
		}
	})
}

func TestAnalyzeReturnEscapes(t *testing.T) {
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	box.Field("v", bc.KindInt)
	c := a.Class("C", "")
	m := c.Method("m", nil, bc.KindRef, true)
	m.New(box.Ref()).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, p, "C", "m")
	if allowed := Analyze(g); len(allowed) != 0 {
		t.Fatalf("returned object allowed: %v", allowed)
	}
}

func TestAnalyzeArgumentEscapes(t *testing.T) {
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	box.Field("v", bc.KindInt)
	c := a.Class("C", "")
	callee := c.Method("use", []bc.Kind{bc.KindRef}, bc.KindVoid, true)
	callee.Return()
	m := c.Method("m", nil, bc.KindInt, true)
	m.New(box.Ref()).InvokeStatic(callee.Ref())
	m.Const(0).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, p, "C", "m")
	if allowed := Analyze(g); len(allowed) != 0 {
		t.Fatalf("call argument allowed: %v", allowed)
	}
}

func TestSetContamination(t *testing.T) {
	// Storing a non-escaping object into another object that escapes
	// drags the whole set into escaping.
	p := boxProgram(t, nil, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, next, sink *bc.Field) {
			outer := m.NewLocal(bc.KindRef)
			inner := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(outer)
			m.New(box.Ref()).Store(inner)
			m.Load(outer).Load(inner).PutField(next)
			m.Load(outer).PutStatic(sink)
			m.Const(0).ReturnValue()
		})
	g := buildGraph(t, p, "C", "m")
	if allowed := Analyze(g); len(allowed) != 0 {
		t.Fatalf("set contamination missed: %v", allowed)
	}
}

func TestRunScalarReplacesLocalObjects(t *testing.T) {
	p := boxProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, next, sink *bc.Field) {
			l := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(l)
			m.Load(l).MonitorEnter()
			m.Load(l).Load(0).PutField(v)
			m.Load(l).MonitorExit()
			m.Load(l).GetField(v).ReturnValue()
		})
	g := buildGraph(t, p, "C", "m")
	res, err := Run(g, pea.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualizedAllocs != 1 || res.ElidedMonitors != 2 {
		t.Fatalf("EA result: %+v", res)
	}
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(p, 1)
	eng := &exec.Engine{Env: env}
	got, err := eng.Run(g, []rt.Value{rt.IntValue(5)})
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 5 || env.Stats.Allocations != 0 || env.Stats.MonitorOps != 0 {
		t.Fatalf("got %v, stats %+v", got, env.Stats)
	}
}

// TestEAMatchesInterpreterOnCorpus: the baseline is also
// semantics-preserving and never allocates more.
func TestEAMatchesInterpreterOnCorpus(t *testing.T) {
	for _, p := range testprog.Corpus() {
		t.Run(p.Name, func(t *testing.T) {
			graphs := make(map[*bc.Method]*ir.Graph)
			for _, m := range p.Prog.Methods {
				g, err := build.Build(m)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := Run(g, pea.Config{}); err != nil {
					t.Fatalf("%s: %v", m.QualifiedName(), err)
				}
				if err := ir.Verify(g); err != nil {
					t.Fatalf("%s: %v\n%s", m.QualifiedName(), err, ir.Dump(g))
				}
				graphs[m] = g
			}
			for _, args := range p.ArgSets {
				envI := rt.NewEnv(p.Prog, 42)
				it := interp.New(envI)
				it.MaxSteps = 5_000_000
				vals := make([]rt.Value, len(args))
				for i, a := range args {
					vals[i] = rt.IntValue(a)
				}
				vi, errI := it.Call(p.Entry, vals)

				envE := rt.NewEnv(p.Prog, 42)
				eng := &exec.Engine{Env: envE, MaxSteps: 5_000_000}
				eng.Invoke = func(callee *bc.Method, as []rt.Value) (rt.Value, error) {
					return eng.Run(graphs[callee], as)
				}
				ve, errE := eng.Run(graphs[p.Entry], vals)
				if (errI == nil) != (errE == nil) {
					t.Fatalf("%v: interp err=%v, ea err=%v", args, errI, errE)
				}
				if errI != nil {
					continue
				}
				if !vi.Equal(ve) {
					t.Fatalf("%v: interp=%v ea=%v", args, vi, ve)
				}
				if envE.Stats.Allocations > envI.Stats.Allocations {
					t.Fatalf("%v: EA increased allocations", args)
				}
			}
		})
	}
}
